package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// buildFrozen populates a registry with deterministic values covering
// every metric kind, label shapes, and escaping.
func buildFrozen() *Registry {
	r := NewRegistry()
	// Registered out of name order on purpose: exposition must sort.
	r.Gauge("zz_last_gauge", "registered last alphabetically first serialized last").Set(2.5)
	c := r.Counter("aa_first_total", "a plain counter")
	c.Add(41)
	c.Inc()
	cv := r.CounterVec("jobs_total", "jobs by outcome", "outcome", "engine")
	cv.With("passed", "reference").Add(7)
	cv.With("failed", "kernel").Add(1)
	h := r.Histogram("wait_seconds", "queue wait", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(50)
	r.GaugeFunc("sampled_gauge", "func-backed", func() float64 { return 1.25 })
	r.Gauge("esc_gauge", "help with \\ and\nnewline").Set(-3)
	gv := r.GaugeVec("labeled_gauge", "label escaping", "path")
	gv.With("a\"b\\c\nd").Set(1)
	return r
}

const goldenText = `# HELP aa_first_total a plain counter
# TYPE aa_first_total counter
aa_first_total 42
# HELP esc_gauge help with \\ and\nnewline
# TYPE esc_gauge gauge
esc_gauge -3
# HELP jobs_total jobs by outcome
# TYPE jobs_total counter
jobs_total{engine="kernel",outcome="failed"} 1
jobs_total{engine="reference",outcome="passed"} 7
# HELP labeled_gauge label escaping
# TYPE labeled_gauge gauge
labeled_gauge{path="a\"b\\c\nd"} 1
# HELP sampled_gauge func-backed
# TYPE sampled_gauge gauge
sampled_gauge 1.25
# HELP wait_seconds queue wait
# TYPE wait_seconds histogram
wait_seconds_bucket{le="0.01"} 2
wait_seconds_bucket{le="0.1"} 2
wait_seconds_bucket{le="1"} 3
wait_seconds_bucket{le="+Inf"} 4
wait_seconds_sum 50.51
wait_seconds_count 4
# HELP zz_last_gauge registered last alphabetically first serialized last
# TYPE zz_last_gauge gauge
zz_last_gauge 2.5
`

// TestExpositionGolden pins the exposition format byte-for-byte: given
// a frozen snapshot the output is fully deterministic — sorted
// families, sorted label sets, cumulative buckets, no timestamps.
func TestExpositionGolden(t *testing.T) {
	r := buildFrozen()
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenText {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, goldenText)
	}
}

// TestExpositionStable renders the same registry repeatedly and across
// rebuilt registries: the bytes never vary.
func TestExpositionStable(t *testing.T) {
	var first string
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := buildFrozen().Snapshot().WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
		} else if buf.String() != first {
			t.Fatalf("iteration %d produced different bytes", i)
		}
	}
}

// TestConcurrentUpdates hammers one counter, gauge, and histogram from
// many goroutines; totals must be exact. Run under -race this is also
// the data-race proof for the hot paths.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{10, 100})

	const workers = 8
	const each = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 150))
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if got := g.Value(); got != workers*each {
		t.Fatalf("gauge = %v, want %d", got, workers*each)
	}
	if got := h.Count(); got != workers*each {
		t.Fatalf("histogram count = %d, want %d", got, workers*each)
	}
	snap := r.Snapshot()
	for _, f := range snap.Families {
		if f.Name != "h" {
			continue
		}
		inf := f.Series[0].Count
		last := f.Series[0].Buckets[len(f.Series[0].Buckets)-1]
		if last > inf {
			t.Fatalf("cumulative bucket %d exceeds count %d", last, inf)
		}
	}
}

// TestVecIdentity verifies With returns the same child for equal label
// values, and distinct children otherwise.
func TestVecIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("v_total", "", "a", "b")
	if v.With("x", "y") != v.With("x", "y") {
		t.Fatal("same labels returned distinct counters")
	}
	if v.With("x", "y") == v.With("y", "x") {
		t.Fatal("swapped labels returned the same counter")
	}
}

// TestNilSafety pins that nil handles accept updates silently — the
// disabled-instrumentation gate.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles reported nonzero values")
	}
}

// TestRegistryPanics pins the programmer-error contracts.
func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup", "")
	mustPanic("duplicate name", func() { r.Gauge("dup", "") })
	mustPanic("empty name", func() { r.Counter("", "") })
	mustPanic("unsorted buckets", func() { r.Histogram("hh", "", []float64{1, 1}) })
	v := r.CounterVec("vv", "", "a")
	mustPanic("label arity", func() { v.With("x", "y") })
}

// TestSnapshotIsolation verifies a snapshot is frozen: updates after
// Snapshot() do not change previously captured values.
func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Add(5)
	snap := r.Snapshot()
	c.Add(100)
	if got := snap.Families[0].Series[0].Value; got != 5 {
		t.Fatalf("snapshot value = %v, want 5", got)
	}
}

// TestFuncMetrics verifies func-backed series sample at snapshot time.
func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := 0.0
	r.CounterFunc("fn_total", "", func() float64 { return n })
	n = 9
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fn_total 9\n") {
		t.Fatalf("func counter not sampled at snapshot:\n%s", buf.String())
	}
}
