package scan

import (
	"metro/internal/core"
	"metro/internal/word"
)

// Boundary is a router's boundary-scan register: one cell of w bits per
// port, in the order [forward inputs 0..i-1][backward outputs 0..o-1].
//
//   - SAMPLE (Capture-DR) latches the words currently arriving at the
//     forward ports and the programmed output cells, without disturbing
//     operation — usable while the router routes live traffic.
//   - EXTEST (Update-DR) loads the output cells and begins driving them
//     onto the links of *disabled* backward ports, one word per cycle,
//     letting a test controller exercise an isolated link from one router
//     while sampling at its neighbor. Enabled ports are never driven, so
//     EXTEST cannot corrupt live traffic (the paper's requirement that a
//     region be testable while the rest of the system operates).
//
// The drive continues each simulation cycle until Release is called (or a
// new EXTEST update replaces the pattern). Boundary implements
// clock.Component; add it to the engine to make EXTEST drives visible to
// the clocked links.
type Boundary struct {
	router *core.Router
	width  int
	out    []uint32 // backward-port output cells
	drive  bool
}

// NewBoundary builds the boundary register for a router.
func NewBoundary(r *core.Router) *Boundary {
	return &Boundary{
		router: r,
		width:  r.Config().Width,
		out:    make([]uint32, r.Config().Outputs),
	}
}

// Len implements Register.
func (b *Boundary) Len() int {
	cfg := b.router.Config()
	return (cfg.Inputs + cfg.Outputs) * b.width
}

// Capture implements Register: SAMPLE of the live port pins.
func (b *Boundary) Capture() []bool {
	cfg := b.router.Config()
	bits := make([]bool, 0, b.Len())
	appendCell := func(v uint32) {
		bits = append(bits, UintToBits(uint64(v&word.Mask(b.width)), b.width)...)
	}
	for fp := 0; fp < cfg.Inputs; fp++ {
		v := uint32(0)
		if end := b.router.ForwardLink(fp); end != nil {
			v = end.Recv().Payload
		}
		appendCell(v)
	}
	for bp := 0; bp < cfg.Outputs; bp++ {
		appendCell(b.out[bp])
	}
	return bits
}

// Update implements Register: EXTEST load of the output cells. Driving
// begins on the next simulation cycle and persists until Release.
func (b *Boundary) Update(bits []bool) {
	cfg := b.router.Config()
	pos := cfg.Inputs * b.width // skip the input cells
	for bp := 0; bp < cfg.Outputs; bp++ {
		var v uint64
		for i := 0; i < b.width && pos+i < len(bits); i++ {
			if bits[pos+i] {
				v |= 1 << uint(i)
			}
		}
		b.out[bp] = uint32(v)
		pos += b.width
	}
	b.drive = true
}

// Release stops EXTEST driving.
func (b *Boundary) Release() { b.drive = false }

// Driving reports whether EXTEST output cells are being driven.
func (b *Boundary) Driving() bool { return b.drive }

// Eval implements clock.Component: while EXTEST is active, drive the
// output cells onto every disabled backward port's link.
//
//metrovet:shared reads only its own router's settings and drives its links; a Boundary must be co-located with its router
//metrovet:bounds out is sized to Outputs by NewBoundary, the loop's bound
//metrovet:width width copies Config.Width, which Config.Validate bounds to [1,32]
func (b *Boundary) Eval(cycle uint64) {
	if !b.drive {
		return
	}
	for bp := 0; bp < b.router.Config().Outputs; bp++ {
		if b.router.BackwardEnabled(bp) {
			continue // never disturb live ports
		}
		if end := b.router.BackwardLink(bp); end != nil {
			end.Send(word.MakeData(b.out[bp], b.width))
		}
	}
}

// Commit implements clock.Component.
func (b *Boundary) Commit(cycle uint64) {}

// InputCell extracts forward port fp's sampled value from a Capture image.
func (b *Boundary) InputCell(bits []bool, fp int) uint32 {
	start := fp * b.width
	var v uint64
	for i := 0; i < b.width && start+i < len(bits); i++ {
		if bits[start+i] {
			v |= 1 << uint(i)
		}
	}
	return uint32(v)
}

// OutputCellBits builds a full register image whose backward-port cells
// carry the given values (input cells zero), for shifting in under EXTEST.
func (b *Boundary) OutputCellBits(values map[int]uint32) []bool {
	cfg := b.router.Config()
	bits := make([]bool, b.Len())
	for bp, v := range values {
		start := (cfg.Inputs + bp) * b.width
		copy(bits[start:start+b.width], UintToBits(uint64(v&word.Mask(b.width)), b.width))
	}
	return bits
}
