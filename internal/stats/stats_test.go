package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %f", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %f/%f", s.Min(), s.Max())
	}
	if s.Percentile(50) != 3 {
		t.Fatalf("P50 = %f", s.Percentile(50))
	}
	if math.Abs(s.StdDev()-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("StdDev = %f", s.StdDev())
	}
}

func TestEmptySampleSafe(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample should report zeros")
	}
	sum := s.Summarize()
	if sum.Count != 0 {
		t.Fatal("empty summary count")
	}
}

func TestAddAll(t *testing.T) {
	var s Sample
	s.AddAll([]float64{1, 2, 3})
	if s.Count() != 3 || s.Mean() != 2 {
		t.Fatalf("AddAll failed: %+v", s.Summarize())
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(vals []float64, p float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		var s Sample
		s.AddAll(vals)
		pp := math.Mod(math.Abs(p), 100)
		got := s.Percentile(pp)
		return got >= s.Min() && got <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileMonotone(t *testing.T) {
	var s Sample
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	prev := s.Percentile(0)
	for p := 5.0; p <= 100; p += 5 {
		cur := s.Percentile(p)
		if cur < prev {
			t.Fatalf("percentile not monotone at %f: %f < %f", p, cur, prev)
		}
		prev = cur
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Header: []string{"name", "value"}}
	tab.Add("alpha", "1")
	tab.Add("beta", "2.50")
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.50") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns align: every line has the same prefix width before col 2.
	idx := strings.Index(lines[0], "value")
	if idx < 0 || !strings.Contains(lines[2][idx:], "1") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableNoHeader(t *testing.T) {
	var tab Table
	tab.Add("x", "y")
	out := tab.String()
	if strings.Contains(out, "--") {
		t.Fatalf("headerless table should have no separator:\n%s", out)
	}
}

func TestHistogramRendering(t *testing.T) {
	var s Sample
	for i := 0; i < 100; i++ {
		s.Add(float64(i % 10))
	}
	out := s.Histogram(5, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("histogram lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars rendered:\n%s", out)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var empty Sample
	if got := empty.Histogram(4, 10); !strings.Contains(got, "no samples") {
		t.Errorf("empty histogram = %q", got)
	}
	var constant Sample
	constant.Add(5)
	constant.Add(5)
	if got := constant.Histogram(4, 10); !strings.Contains(got, "all 2 samples") {
		t.Errorf("constant histogram = %q", got)
	}
}
