package clitest

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
)

// Server is a running metroserve subprocess bound to an ephemeral port.
type Server struct {
	// URL is the server's base URL, e.g. "http://127.0.0.1:41873".
	URL string

	cmd    *exec.Cmd
	out    *serverLog
	waited chan error
}

// serverLog accumulates the daemon's combined output for post-mortem
// dumps while letting the startup scanner read stdout line by line. The
// mutex matters: exec feeds stderr from its own goroutine while the
// harness copies stdout from another.
type serverLog struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (l *serverLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *serverLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.String()
}

// StartServer builds metro/cmd/metroserve (once per test process) and
// starts it on an ephemeral port with the given extra flags, returning
// once the daemon reports its bound address. The server is stopped with
// SIGTERM — exercising the graceful-drain path — via t.Cleanup, and its
// full output is logged if the test fails.
func StartServer(t *testing.T, flags ...string) *Server {
	t.Helper()
	if testing.Short() {
		t.Skip("metroserve harness execs a subprocess; skipped in -short mode")
	}
	args := append([]string{"-addr", "127.0.0.1:0"}, flags...)
	cmd := exec.Command(binary(t, "metroserve"), args...)
	cmd.Env = os.Environ()
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	logs := &serverLog{}
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting metroserve: %v", err)
	}

	// The first stdout line is `metroserve listening on <addr>`; the
	// rest of the stream is drained into the log.
	sc := bufio.NewScanner(io.TeeReader(stdout, logs))
	addr := ""
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "metroserve listening on "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("metroserve never reported a listen address; output:\n%s", logs.String())
	}
	waited := make(chan error, 1)
	go func() {
		io.Copy(logs, stdout)
		waited <- cmd.Wait()
	}()

	s := &Server{URL: "http://" + addr, cmd: cmd, out: logs, waited: waited}
	t.Cleanup(func() {
		err := s.Stop()
		if t.Failed() {
			t.Logf("metroserve output:\n%s", logs.String())
		}
		if err != nil {
			t.Errorf("metroserve did not drain cleanly: %v\noutput:\n%s", err, logs.String())
		}
	})
	return s
}

// Stop sends SIGTERM and waits for the daemon to drain and exit,
// returning an error if it exited non-zero. Stop is idempotent; the
// automatic cleanup calls it if the test has not.
func (s *Server) Stop() error {
	if s.cmd == nil {
		return nil
	}
	cmd := s.cmd
	s.cmd = nil
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signaling metroserve: %w", err)
	}
	if err := <-s.waited; err != nil {
		return fmt.Errorf("metroserve exit: %w", err)
	}
	return nil
}

// Output returns everything the daemon has written so far.
func (s *Server) Output() string { return s.out.String() }
