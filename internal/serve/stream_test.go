package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"metro/internal/metrofuzz"
)

// TestHubLiveSubscriber exercises the live fan-out path directly: a
// subscriber attached before publication receives events in order, a
// saturated subscriber has events dropped rather than blocking the
// publisher, and close terminates every channel.
func TestHubLiveSubscriber(t *testing.T) {
	h := newHub("test-job", jobObs{})
	replay, live, cancel := h.subscribe()
	defer cancel()
	if len(replay) != 0 || live == nil {
		t.Fatalf("fresh hub: %d replayed events, live=%v", len(replay), live)
	}
	h.publish(streamEvent{name: "progress", data: []byte("{}")}, true)
	h.publish(streamEvent{name: "gauge", data: []byte("{}")}, false)
	if ev := <-live; ev.name != "progress" {
		t.Fatalf("first live event %q", ev.name)
	}
	if ev := <-live; ev.name != "gauge" {
		t.Fatalf("second live event %q", ev.name)
	}

	// Replay carries only kept events.
	replay2, _, cancel2 := h.subscribe()
	cancel2()
	if len(replay2) != 1 || replay2[0].name != "progress" {
		t.Fatalf("replay %v, want the single kept progress event", replay2)
	}

	// Saturate: publishes beyond the channel depth are dropped, not
	// blocking — this call returning at all is the assertion.
	for i := 0; i < subBuffer+16; i++ {
		h.publish(streamEvent{name: "gauge", data: []byte("{}")}, false)
	}
	h.mu.Lock()
	dropped := h.dropped
	h.mu.Unlock()
	if dropped == 0 {
		t.Fatal("saturated subscriber recorded no drops")
	}

	h.close()
	for range live {
	}
	// Publishing after close is a no-op, and double-cancel is safe.
	h.publish(streamEvent{name: "late", data: nil}, true)
	cancel()
}

// TestHubHistoryBound asserts the replay history drops oldest beyond
// the bound.
func TestHubHistoryBound(t *testing.T) {
	h := newHub("test-job", jobObs{})
	for i := 0; i < historyBound+10; i++ {
		h.publish(streamEvent{name: "progress", data: []byte{byte(i)}}, true)
	}
	replay, _, cancel := h.subscribe()
	cancel()
	if len(replay) != historyBound {
		t.Fatalf("history %d events, want bound %d", len(replay), historyBound)
	}
	if replay[0].data[0] != 10 {
		t.Fatalf("oldest surviving event %d, want 10 (drop-oldest)", replay[0].data[0])
	}
}

// TestLiveEventStream subscribes to a queued job *before* it runs, so
// the SSE handler exercises the live-follow path end to end: replay
// (empty), then live progress, then the terminal done event.
func TestLiveEventStream(t *testing.T) {
	// No workers yet: submit first so the subscription provably begins
	// before execution.
	s, hs := newTestServer(t, Config{Workers: 0, ProgressPeriod: 8, GaugeEvery: 1})
	spec := quickSpec(t, 1)
	resp := submit(t, hs.URL, spec, "")
	readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Job")

	events, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()

	// Now start a worker to run the queued job.
	s.wg.Add(1)
	go s.worker()

	progress, done := 0, false
	sc := bufio.NewScanner(events.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		if v, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			event = v
		} else if _, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			switch event {
			case "progress":
				progress++
			case "done":
				done = true
			}
		}
		if done {
			break
		}
	}
	if progress == 0 || !done {
		t.Fatalf("live stream: %d progress frames, done=%v", progress, done)
	}
}

// TestEventStreamClientDisconnect asserts a subscriber vanishing
// mid-stream does not wedge the job: the handler returns on context
// cancellation and the run completes for everyone else.
func TestEventStreamClientDisconnect(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, ProgressPeriod: 4})
	spec := quickSpec(t, 2)
	resp := submit(t, hs.URL, spec, "")
	readBody(t, resp)
	id := resp.Header.Get("X-Job")

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", hs.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	events, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a little, then walk away mid-stream.
	buf := make([]byte, 64)
	events.Body.Read(buf)
	cancel()
	events.Body.Close()

	// The job still completes and is served normally.
	final := submit(t, hs.URL, spec, "?wait=1")
	body := readBody(t, final)
	if final.StatusCode != http.StatusOK {
		t.Fatalf("run after disconnect: status %d; body: %s", final.StatusCode, body)
	}
}

// TestGaugeFrames asserts gauge telemetry reaches SSE subscribers via
// the recorder sink: a live subscriber on a traced scenario sees gauge
// frames with parseable payloads.
func TestGaugeFrames(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 0, ProgressPeriod: 64, GaugeEvery: 1})
	spec := quickSpec(t, 1)
	resp := submit(t, hs.URL, spec, "")
	readBody(t, resp)
	id := resp.Header.Get("X-Job")
	events, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()
	s.wg.Add(1)
	go s.worker()

	gauges := 0
	sc := bufio.NewScanner(events.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		if v, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			event = v
		} else if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			if event == "gauge" {
				var g gaugePayload
				if err := json.Unmarshal([]byte(data), &g); err != nil {
					t.Fatalf("bad gauge frame %q: %v", data, err)
				}
				if g.Kind == "" {
					t.Fatalf("gauge frame without a kind: %q", data)
				}
				gauges++
			}
		}
		if event == "done" {
			break
		}
	}
	if gauges == 0 {
		t.Fatal("no gauge frames observed; the recorder sink is not wired to the hub")
	}
}

// TestHealthz pins liveness as load-independent: 200 with the same body
// before and during drain. Readiness state lives on /v1/readyz.
func TestHealthz(t *testing.T) {
	s := New(Config{Workers: 1})
	hs := httptestServer(t, s)
	get := func() string {
		resp, err := http.Get(hs + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d", resp.StatusCode)
		}
		return string(body)
	}
	if got := get(); got != "{\"ok\":true}\n" {
		t.Fatalf("healthz before drain: %q", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := get(); got != "{\"ok\":true}\n" {
		t.Fatalf("healthz after drain: %q", got)
	}
}

// TestDrainCancelsInFlight asserts the drain deadline path: a job still
// running when the drain budget expires is canceled cooperatively and
// recorded as a deadline outcome, and Drain itself returns.
func TestDrainCancelsInFlight(t *testing.T) {
	s := New(Config{Workers: 1, ProgressPeriod: 1})
	hs := httptestServer(t, s)
	// A job that effectively never finishes on its own within the test:
	// the biggest message budget the grammar admits.
	scn := metrofuzz.Generate(1)
	scn.Messages = 2000
	spec := metrofuzz.EncodeSpec(scn)
	resp, err := http.Post(hs+"/v1/jobs", "text/plain", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Job")

	// An already-expired drain context forces the cancel path at once.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain with expired context reported success")
	}
	// The worker has exited; the job settled as deadline (or finished
	// legitimately if it won the race — both are terminal).
	pollResp, err := http.Get(hs + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, pollResp)
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("job not terminal after drain: %s", body)
	}
	switch res.Status {
	case StatusDeadline, StatusPassed, StatusFailed:
	default:
		t.Fatalf("status %q after drain", res.Status)
	}
}

// httptestServer wraps a Server without the automatic drain cleanup,
// for tests that drive Drain themselves.
func httptestServer(t *testing.T, s *Server) string {
	t.Helper()
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return hs.URL
}
