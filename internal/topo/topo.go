// Package topo constructs the multipath, multistage network topologies
// METRO routers are designed for (paper, Section 2, Figure 1).
//
// In a multibutterfly-style network each stage subdivides the set of
// possible destinations into classes determined by the radix of its routing
// components; dilated routers provide multiple logically equivalent links
// toward each class, creating many independent source-destination paths.
// The final stage typically uses dilation-1 routers so that the complete
// loss of any final-stage router isolates no endpoint (each endpoint's
// delivery links come from distinct routers).
//
// The package is purely structural: it computes router counts, inter-stage
// wiring (deterministically interleaved or randomly wired, as studied in
// Leighton/Lisinski/Maggs), routing digit sequences, path enumeration and
// structural fault-tolerance properties. Packages netsim and cascade
// instantiate simulators from these descriptions.
package topo

import (
	"fmt"
	"math/rand"
)

// Wiring selects how the logically equivalent wires between consecutive
// stages are permuted onto the next stage's inputs.
type Wiring int

const (
	// WiringInterleave spreads the dilated outputs of each router across
	// distinct downstream routers in a deterministic round-robin, a
	// canonical construction with good expansion.
	WiringInterleave Wiring = iota
	// WiringRandom applies a seeded random permutation — the randomly
	// wired multibutterfly of the literature.
	WiringRandom
)

// String returns the wiring mnemonic.
func (w Wiring) String() string {
	switch w {
	case WiringInterleave:
		return "interleave"
	case WiringRandom:
		return "random"
	default:
		return fmt.Sprintf("Wiring(%d)", int(w))
	}
}

// StageSpec describes the routers forming one network stage.
type StageSpec struct {
	// Inputs is the number of forward ports used on each router.
	Inputs int
	// Radix is the number of logical output directions.
	Radix int
	// Dilation is the number of equivalent backward ports per direction.
	Dilation int
}

// Outputs returns the backward ports per router in this stage.
func (s StageSpec) Outputs() int { return s.Radix * s.Dilation }

// Spec describes a complete multipath multistage network.
type Spec struct {
	// Endpoints is the number of network endpoints (sources=destinations).
	Endpoints int
	// EndpointLinks is the number of injection links and delivery links
	// per endpoint (2 in Figure 1, for fault tolerance).
	EndpointLinks int
	// Stages lists the router stages from the source side to the
	// destination side.
	Stages []StageSpec
	// Wiring selects the inter-stage permutation style.
	Wiring Wiring
	// Seed drives WiringRandom; ignored for WiringInterleave.
	Seed int64
}

// NodeKind distinguishes the two node types a wire can attach to.
type NodeKind int

const (
	// KindRouter identifies a router port.
	KindRouter NodeKind = iota
	// KindEndpoint identifies an endpoint link.
	KindEndpoint
)

// PortRef identifies one attachment point of a wire.
type PortRef struct {
	Kind NodeKind
	// Stage and Index locate a router (Kind == KindRouter); for endpoints
	// Index is the endpoint number and Stage is -1.
	Stage, Index int
	// Port is the router forward-port index, or the endpoint link index.
	Port int
}

// String formats the reference for traces.
func (p PortRef) String() string {
	if p.Kind == KindEndpoint {
		return fmt.Sprintf("ep%d.%d", p.Index, p.Port)
	}
	return fmt.Sprintf("s%dr%d.f%d", p.Stage, p.Index, p.Port)
}

// Topology is a fully elaborated network: router counts per stage plus the
// complete wiring.
type Topology struct {
	Spec Spec
	// RoutersPerStage[s] is the number of routers in stage s.
	RoutersPerStage []int
	// BlocksPerStage[s] is the number of destination-class blocks at the
	// input of stage s (1 at stage 0, multiplied by each radix).
	BlocksPerStage []int
	// Inject[e][k] gives the stage-0 forward port fed by endpoint e's
	// injection link k.
	Inject [][]PortRef
	// Out[s][j][bp] gives the attachment of backward port bp of router j
	// in stage s: a forward port in stage s+1, or an endpoint delivery
	// link after the last stage.
	Out [][][]PortRef
}

// Build validates the specification and elaborates the full topology.
func Build(spec Spec) (*Topology, error) {
	if err := Validate(spec); err != nil {
		return nil, err
	}
	t := &Topology{Spec: spec}
	S := len(spec.Stages)

	t.BlocksPerStage = make([]int, S+1)
	t.BlocksPerStage[0] = 1
	for s, st := range spec.Stages {
		t.BlocksPerStage[s+1] = t.BlocksPerStage[s] * st.Radix
	}

	// Wire conservation: all outputs of stage s feed the inputs of stage
	// s+1, so R_{s+1} = R_s * o_s / i_{s+1} with R_0 = N*ne/i_0.
	t.RoutersPerStage = make([]int, S)
	wires := spec.Endpoints * spec.EndpointLinks
	for s, st := range spec.Stages {
		t.RoutersPerStage[s] = wires / st.Inputs
		wires = t.RoutersPerStage[s] * st.Outputs()
	}

	rng := rand.New(rand.NewSource(spec.Seed))

	// Injection wiring: wire w = e*ne + k attaches to router (w mod R0),
	// input (w div R0), spreading each endpoint's links over distinct
	// routers.
	ne := spec.EndpointLinks
	r0 := t.RoutersPerStage[0]
	t.Inject = make([][]PortRef, spec.Endpoints)
	for e := 0; e < spec.Endpoints; e++ {
		t.Inject[e] = make([]PortRef, ne)
		for k := 0; k < ne; k++ {
			w := e*ne + k
			t.Inject[e][k] = PortRef{Kind: KindRouter, Stage: 0, Index: w % r0, Port: w / r0}
		}
	}

	// Inter-stage wiring, block by block.
	t.Out = make([][][]PortRef, S)
	for s, st := range spec.Stages {
		rs := t.RoutersPerStage[s]
		t.Out[s] = make([][]PortRef, rs)
		for j := range t.Out[s] {
			t.Out[s][j] = make([]PortRef, st.Outputs())
		}
		blocks := t.BlocksPerStage[s]
		perBlock := rs / blocks
		for b := 0; b < blocks; b++ {
			for q := 0; q < st.Radix; q++ {
				// Wires leaving block b in direction q, router-major.
				type wireSrc struct{ j, bp int }
				var srcs []wireSrc
				for p := 0; p < perBlock; p++ {
					j := b*perBlock + p
					for dd := 0; dd < st.Dilation; dd++ {
						srcs = append(srcs, wireSrc{j, q*st.Dilation + dd})
					}
				}
				subBlock := b*st.Radix + q
				targets := t.targetPorts(s+1, subBlock, len(srcs))
				if spec.Wiring == WiringRandom {
					rng.Shuffle(len(targets), func(x, y int) {
						targets[x], targets[y] = targets[y], targets[x]
					})
				}
				for x, src := range srcs {
					t.Out[s][src.j][src.bp] = targets[x]
				}
			}
		}
	}
	return t, nil
}

// targetPorts lists the n attachment points of block `block` at the input
// of stage s (or the endpoint delivery links when s equals the stage
// count), in interleaved order: consecutive wires hit distinct routers.
func (t *Topology) targetPorts(s, block, n int) []PortRef {
	out := make([]PortRef, 0, n)
	if s == len(t.Spec.Stages) {
		// block == destination endpoint; its delivery links.
		for k := 0; k < t.Spec.EndpointLinks; k++ {
			out = append(out, PortRef{Kind: KindEndpoint, Stage: -1, Index: block, Port: k})
		}
		return out
	}
	perBlock := t.RoutersPerStage[s] / t.BlocksPerStage[s]
	// Interleave: wire x -> router (x mod perBlock), input (x div perBlock).
	for x := 0; x < n; x++ {
		j := block*perBlock + x%perBlock
		out = append(out, PortRef{Kind: KindRouter, Stage: s, Index: j, Port: x / perBlock})
	}
	return out
}

// Validate checks the structural constraints of a specification.
func Validate(spec Spec) error {
	if spec.Endpoints < 2 {
		return fmt.Errorf("topo: need at least 2 endpoints, got %d", spec.Endpoints)
	}
	if spec.EndpointLinks < 1 {
		return fmt.Errorf("topo: need at least 1 endpoint link, got %d", spec.EndpointLinks)
	}
	if len(spec.Stages) == 0 {
		return fmt.Errorf("topo: need at least one stage")
	}
	prod := 1
	for s, st := range spec.Stages {
		if st.Inputs < 1 || st.Radix < 2 || st.Dilation < 1 {
			return fmt.Errorf("topo: stage %d malformed: %+v", s, st)
		}
		if !isPow2(st.Inputs) || !isPow2(st.Radix) || !isPow2(st.Dilation) {
			return fmt.Errorf("topo: stage %d parameters must be powers of two: %+v", s, st)
		}
		prod *= st.Radix
	}
	if prod != spec.Endpoints {
		return fmt.Errorf("topo: radix product %d != endpoints %d", prod, spec.Endpoints)
	}

	// Wire-count conservation through the stages.
	wiresPerBlock := spec.Endpoints * spec.EndpointLinks // block 0 covers everything
	blocks := 1
	for s, st := range spec.Stages {
		if wiresPerBlock%st.Inputs != 0 {
			return fmt.Errorf("topo: stage %d: %d wires per block not divisible by %d inputs",
				s, wiresPerBlock, st.Inputs)
		}
		perBlock := wiresPerBlock / st.Inputs
		if perBlock < 1 {
			return fmt.Errorf("topo: stage %d has no routers per block", s)
		}
		wiresPerBlock = perBlock * st.Dilation
		blocks *= st.Radix
	}
	if wiresPerBlock != spec.EndpointLinks {
		return fmt.Errorf("topo: final stage delivers %d links per endpoint, want %d",
			wiresPerBlock, spec.EndpointLinks)
	}
	return nil
}

// RouteDigits returns the per-stage direction digits selecting destination
// endpoint dest: digit s is the direction a stage-s router must switch
// toward. Stage 0 consumes the most significant digit.
func (t *Topology) RouteDigits(dest int) []int {
	return t.AppendRouteDigits(make([]int, 0, len(t.Spec.Stages)), dest)
}

// AppendRouteDigits is the allocation-free variant of RouteDigits: the
// per-stage directions append to dst, which is returned. Hot senders reuse
// one digit buffer across attempts.
func (t *Topology) AppendRouteDigits(dst []int, dest int) []int {
	span := t.Spec.Endpoints
	rem := dest
	for _, st := range t.Spec.Stages {
		span /= st.Radix
		dst = append(dst, rem/span)
		rem %= span
	}
	return dst
}

// DestOf inverts RouteDigits: the endpoint reached by following the digit
// sequence.
func (t *Topology) DestOf(digits []int) int {
	dest := 0
	span := t.Spec.Endpoints
	for s, st := range t.Spec.Stages {
		span /= st.Radix
		dest += digits[s] * span
	}
	return dest
}

// RouterCount returns the total routers in the network.
func (t *Topology) RouterCount() int {
	n := 0
	for _, r := range t.RoutersPerStage {
		n += r
	}
	return n
}

// LinkCount returns the total links (injection + inter-stage + delivery).
func (t *Topology) LinkCount() int {
	n := t.Spec.Endpoints * t.Spec.EndpointLinks
	for s, st := range t.Spec.Stages {
		n += t.RoutersPerStage[s] * st.Outputs()
	}
	return n
}

// StageOf reports which stage a router index belongs to given a flat
// router numbering (stage by stage).
func (t *Topology) StageOf(flat int) (stage, index int) {
	for s, r := range t.RoutersPerStage {
		if flat < r {
			return s, flat
		}
		flat -= r
	}
	return -1, -1
}

// PathCount counts the distinct source-to-destination paths from endpoint
// src to endpoint dest, excluding none of the network elements. It follows
// every injection link and, at each stage, every equivalent backward port
// in the required direction.
func (t *Topology) PathCount(src, dest int) int {
	digits := t.RouteDigits(dest)
	total := 0
	for _, inj := range t.Inject[src] {
		total += t.countFrom(inj, digits, dest)
	}
	return total
}

func (t *Topology) countFrom(at PortRef, digits []int, dest int) int {
	if at.Kind == KindEndpoint {
		if at.Index == dest {
			return 1
		}
		return 0
	}
	st := t.Spec.Stages[at.Stage]
	q := digits[at.Stage]
	n := 0
	for dd := 0; dd < st.Dilation; dd++ {
		bp := q*st.Dilation + dd
		n += t.countFrom(t.Out[at.Stage][at.Index][bp], digits, dest)
	}
	return n
}

// Reachable reports whether dest can be reached from src when the routers
// in deadRouters (keyed by stage/index) are removed from the network.
func (t *Topology) Reachable(src, dest int, deadRouters map[[2]int]bool) bool {
	digits := t.RouteDigits(dest)
	for _, inj := range t.Inject[src] {
		if t.reachFrom(inj, digits, dest, deadRouters) {
			return true
		}
	}
	return false
}

func (t *Topology) reachFrom(at PortRef, digits []int, dest int, dead map[[2]int]bool) bool {
	if at.Kind == KindEndpoint {
		return at.Index == dest
	}
	if dead[[2]int{at.Stage, at.Index}] {
		return false
	}
	st := t.Spec.Stages[at.Stage]
	q := digits[at.Stage]
	for dd := 0; dd < st.Dilation; dd++ {
		bp := q*st.Dilation + dd
		if t.reachFrom(t.Out[at.Stage][at.Index][bp], digits, dest, dead) {
			return true
		}
	}
	return false
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
