package traffic

import (
	"math/rand"

	"metro/internal/netsim"
	"metro/internal/nic"
	"metro/internal/stats"
)

// OpenLoop is a Bernoulli-injection workload: every cycle, each endpoint
// independently generates a new message with probability matching the
// target offered load, queueing behind whatever is already waiting. Unlike
// the closed-loop (processor-stall) model, generation does not wait for
// completions, so offered load beyond the network's saturation point
// builds unbounded queues — the classical workload for measuring saturation
// throughput.
type OpenLoop struct {
	// Load is the offered load: the fraction of each endpoint's injection
	// bandwidth that new message words would occupy.
	Load float64
	// MsgBytes is the fixed payload size.
	MsgBytes int
	// Pattern picks destinations (nil = Uniform).
	Pattern Pattern
	// Seed drives generation.
	Seed int64
	// Warmup discards results completing before this cycle.
	Warmup uint64
	// MaxQueue bounds each endpoint's backlog; generation pauses at the
	// bound (so saturated runs don't consume unbounded memory). 0 means
	// 1024.
	MaxQueue int

	net      *netsim.Network
	rng      *rand.Rand
	prob     float64
	measured []nic.Result
	injected int
}

// Bind attaches the driver to a built network and registers it with the
// engine. The network's Params.OnResult must have been set to OnResult.
func (o *OpenLoop) Bind(n *netsim.Network) {
	o.net = n
	o.rng = rand.New(rand.NewSource(o.Seed))
	if o.Pattern == nil {
		o.Pattern = Uniform{}
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 1024
	}
	msgWords := float64(n.MessageWords(o.MsgBytes))
	o.prob = o.Load / msgWords
	n.Engine.Add(o)
}

// OnResult is the completion callback to wire into netsim.Params.
func (o *OpenLoop) OnResult(r nic.Result) {
	if r.Done >= o.Warmup {
		o.measured = append(o.measured, r)
	}
}

// Eval implements clock.Component.
//
//metrovet:shared driver registers via Engine.Add, so it runs in the serialized epilogue after every endpoint has evaluated
func (o *OpenLoop) Eval(cycle uint64) {
	n := len(o.net.Endpoints)
	for e := 0; e < n; e++ {
		if o.net.Endpoints[e].QueueLen() >= o.MaxQueue {
			continue
		}
		if o.rng.Float64() >= o.prob {
			continue
		}
		dest := o.Pattern.Dest(e, n, o.rng)
		//metrovet:alloc per-injected-message payload; ownership transfers to the endpoint queue
		payload := make([]byte, o.MsgBytes)
		o.rng.Read(payload)
		o.net.Send(e, dest, payload)
		o.injected++
	}
}

// Commit implements clock.Component.
func (o *OpenLoop) Commit(cycle uint64) {}

// Injected returns the number of messages generated.
func (o *OpenLoop) Injected() int { return o.injected }

// Measured returns the post-warmup results.
func (o *OpenLoop) Measured() []nic.Result { return o.measured }

// Point summarizes the measured interval.
func (o *OpenLoop) Point() stats.LoadPoint {
	var lat, qlat stats.Sample
	delivered, retries := 0, 0
	var firstDone, lastDone uint64
	for _, r := range o.measured {
		lat.Add(float64(r.Done - r.Injected))
		qlat.Add(float64(r.Done - r.Msg.Created))
		if r.Delivered {
			delivered++
		}
		retries += r.Retries
		if firstDone == 0 || r.Done < firstDone {
			firstDone = r.Done
		}
		if r.Done > lastDone {
			lastDone = r.Done
		}
	}
	p := stats.LoadPoint{
		OfferedLoad:  o.Load,
		Latency:      lat.Summarize(),
		QueueLatency: qlat.Summarize(),
		Messages:     len(o.measured),
		Delivered:    delivered,
	}
	if len(o.measured) > 0 {
		p.RetriesPerMessage = float64(retries) / float64(len(o.measured))
		if lastDone > firstDone {
			msgWords := float64(o.net.MessageWords(o.MsgBytes))
			perEndpoint := float64(len(o.measured)) / float64(len(o.net.Endpoints))
			p.AcceptedLoad = perEndpoint * msgWords / float64(lastDone-firstDone)
		}
	}
	return p
}

// RunOpenLoop executes one open-loop measurement.
func RunOpenLoop(spec RunSpec) (stats.LoadPoint, error) {
	driver := &OpenLoop{
		Load:     spec.Load,
		MsgBytes: spec.MsgBytes,
		Pattern:  spec.Pattern,
		Seed:     spec.Seed,
		Warmup:   spec.WarmupCycles,
	}
	prev := spec.Net.OnResult
	spec.Net.OnResult = func(r nic.Result) {
		driver.OnResult(r)
		if prev != nil {
			prev(r)
		}
	}
	n, err := netsim.Build(spec.Net)
	if err != nil {
		return stats.LoadPoint{}, err
	}
	defer n.Close() // release parallel-engine workers between sweep points
	driver.Bind(n)
	n.Run(spec.WarmupCycles + spec.MeasureCycles)
	return driver.Point(), nil
}

// SweepOpenLoop measures an open-loop curve across offered loads; past
// saturation the accepted load plateaus while queueing latency diverges.
func SweepOpenLoop(spec RunSpec, loads []float64) ([]stats.LoadPoint, error) {
	points := make([]stats.LoadPoint, 0, len(loads))
	for _, l := range loads {
		spec.Load = l
		p, err := RunOpenLoop(spec)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}
