package kernel

import "metro/internal/metrics"

// PublishShape sets static-shape gauges (any may be nil) to the
// compiled plan's dimensions: evaluation units, arena-resident links,
// and delay-class arenas. The shape is fixed at Compile, so this is a
// one-shot publish at assembly time, not a sampled metric — netsim
// calls it when a network is built with engine metrics attached, giving
// operators the plane size behind the per-partition step-time gauges.
func (c *Compiled) PublishShape(units, links, arenas *metrics.Gauge) {
	units.Set(float64(c.Units()))
	links.Set(float64(c.Links()))
	arenas.Set(float64(len(c.arenas)))
}
