package main_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metro/internal/clitest"
)

// TestSnapshotWritten runs a minimal benchmark sweep and checks the
// perf-trajectory contract: BENCH_<n>.json appears with parsed
// results, and a second run appends the next index rather than
// clobbering the first.
func TestSnapshotWritten(t *testing.T) {
	if testing.Short() {
		t.Skip("execs go test as a subprocess; skipped in -short mode")
	}
	dir := t.TempDir()
	args := []string{"-bench", "RecorderSteadyState", "-benchtime", "5x",
		"-pkgs", "metro/internal/telemetry", "-dir", dir}
	out := clitest.Run(t, "metrobench", args...)
	if !strings.Contains(string(out), "BENCH_1.json") {
		t.Fatalf("first run did not report BENCH_1.json:\n%s", out)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Index      int    `json:"index"`
		GoVersion  string `json:"go_version"`
		Benchmarks []struct {
			Name     string  `json:"name"`
			Package  string  `json:"package"`
			NsPerOp  float64 `json:"ns_per_op"`
			AllocsOp int64   `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Index != 1 || snap.GoVersion == "" || len(snap.Benchmarks) == 0 {
		t.Fatalf("snapshot incomplete: %+v", snap)
	}
	b := snap.Benchmarks[0]
	if !strings.HasPrefix(b.Name, "BenchmarkRecorderSteadyState") ||
		b.Package != "metro/internal/telemetry" || b.NsPerOp <= 0 {
		t.Fatalf("parsed benchmark wrong: %+v", b)
	}
	if b.AllocsOp != 0 {
		t.Errorf("recorder steady state allocates: %+v", b)
	}

	clitest.Run(t, "metrobench", args...)
	if _, err := os.Stat(filepath.Join(dir, "BENCH_2.json")); err != nil {
		t.Fatalf("second run did not append BENCH_2.json: %v", err)
	}
}

// TestMetricsOverheadRecorded runs the congested-step pair with and
// without the operational-metrics block and checks the snapshot
// derives metrics_overhead from it.
func TestMetricsOverheadRecorded(t *testing.T) {
	if testing.Short() {
		t.Skip("execs go test as a subprocess; skipped in -short mode")
	}
	dir := t.TempDir()
	out := clitest.Run(t, "metrobench", "-bench", "CongestedStep$|CongestedStepMetrics$",
		"-benchtime", "5x", "-pkgs", "metro/internal/netsim", "-dir", dir)
	if !strings.Contains(string(out), "metrics overhead:") {
		t.Fatalf("report does not summarize the metrics overhead:\n%s", out)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Metrics *struct {
			Disabled float64 `json:"disabled_ns_per_cycle"`
			Enabled  float64 `json:"enabled_ns_per_cycle"`
		} `json:"metrics_overhead"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Metrics == nil || snap.Metrics.Disabled <= 0 || snap.Metrics.Enabled <= 0 {
		t.Fatalf("metrics_overhead missing or incomplete: %+v", snap.Metrics)
	}
}

// TestFailureModes pins the exit codes: 2 for misuse, 1 when nothing
// matched (an empty snapshot would poison the trajectory silently).
func TestFailureModes(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	clitest.ExitCode(t, 2, "metrobench", "stray-arg")
	clitest.ExitCode(t, 1, "metrobench", "-bench", "NoSuchBenchmarkAnywhere",
		"-benchtime", "1x", "-pkgs", "metro/internal/telemetry", "-dir", t.TempDir())
}

// TestScaleSnapshotAndOverwriteGuard runs a scale-only snapshot (no
// benchmark subprocess) on a tiny kernel network, pins the recorded
// curve fields, and checks the overwrite contract: re-writing a pinned
// index fails without -force and succeeds with it.
func TestScaleSnapshotAndOverwriteGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	dir := t.TempDir()
	args := []string{"-bench", "none", "-scale", "16", "-scale-cycles", "8",
		"-scale-workers", "0,2", "-index", "3", "-dir", dir}
	clitest.Run(t, "metrobench", args...)
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_3.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Index int `json:"index"`
		Scale []struct {
			Endpoints int     `json:"endpoints"`
			Radix     int     `json:"radix"`
			Routers   int     `json:"routers"`
			Workers   int     `json:"workers"`
			Cycles    uint64  `json:"cycles"`
			NsPerCyc  float64 `json:"ns_per_cycle"`
		} `json:"scale"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Index != 3 || len(snap.Scale) != 2 {
		t.Fatalf("snapshot incomplete: %+v", snap)
	}
	for i, p := range snap.Scale {
		if p.Endpoints != 16 || p.Radix != 4 || p.Routers == 0 ||
			p.Cycles != 8 || p.NsPerCyc <= 0 {
			t.Fatalf("scale point %d wrong: %+v", i, p)
		}
	}
	if snap.Scale[0].Workers != 0 || snap.Scale[1].Workers != 2 {
		t.Fatalf("worker sweep wrong: %+v", snap.Scale)
	}

	// Same pinned index again: refused without -force, honored with it.
	out := clitest.ExitCode(t, 1, "metrobench", args...)
	if !strings.Contains(string(out), "-force") {
		t.Fatalf("overwrite refusal does not mention -force:\n%s", out)
	}
	clitest.Run(t, "metrobench", append(args, "-force")...)

	// -bench none with no -scale would write an empty snapshot: misuse.
	clitest.ExitCode(t, 2, "metrobench", "-bench", "none", "-dir", dir)
}
