// Package netsim assembles complete METRO networks — routers, pipelined
// links and source-responsible endpoints on a multipath multistage
// topology — and runs cycle-accurate simulations of them.
//
// It is the substrate for the paper's aggregate-performance results
// (Figure 3) and for the fault-tolerance and ablation experiments: traffic
// generators (package traffic) drive the endpoints, fault plans (package
// fault) mutate links and routers mid-run, and the collected nic.Results
// aggregate into the reported statistics.
package netsim

import (
	"fmt"

	"metro/internal/cascade"
	"metro/internal/clock"
	"metro/internal/core"
	"metro/internal/kernel"
	"metro/internal/link"
	"metro/internal/nic"
	"metro/internal/prng"
	"metro/internal/telemetry"
	"metro/internal/topo"
	"metro/internal/word"
)

// Params configures a network build.
type Params struct {
	// Spec is the multistage topology to elaborate.
	Spec topo.Spec
	// Width is the channel width w in bits.
	Width int
	// HeaderWords is the hw parameter applied to every stage.
	HeaderWords int
	// StageHeaderWords optionally overrides HeaderWords per stage,
	// allowing networks mixing router generations (an hw=0 bit-stripping
	// stage feeding an hw=2 pipelined-setup stage, say). Entries < 0 fall
	// back to HeaderWords.
	StageHeaderWords []int
	// DataPipe is the dp parameter applied to every router.
	DataPipe int
	// LinkDelay is the pipeline depth of every link (vtd >= 1).
	LinkDelay int
	// StageLinkDelays optionally overrides LinkDelay per link tier:
	// element 0 applies to injection links, element s+1 to the output
	// links of stage s. Shorter entries fall back to LinkDelay. This is
	// the paper's variable turn delay: each port's wire can contribute a
	// different number of pipeline stages (Section 5.1), and the router's
	// Table 2 turn-delay registers record the per-port values.
	StageLinkDelays []int
	// FastReclaim selects fast path reclamation on every forward port;
	// false selects detailed blocked replies everywhere.
	FastReclaim bool
	// DetailedStages lists stages whose routers use detailed blocked
	// replies regardless of FastReclaim — the paper's mixed mode, where a
	// portion of the network is selected for information gathering while
	// the rest recovers fast (Section 5.1, Path Reclamation).
	DetailedStages []int
	// FirstFreeSelection replaces stochastic output selection with the
	// deterministic first-free ablation on every router.
	FirstFreeSelection bool
	// CascadeWidth is the router width-cascade factor c: every logical
	// router is built from c physical components sharing random bits and
	// the wired-AND IN-USE check, every link becomes c parallel lanes,
	// and the logical channel width becomes Width*c (default 1).
	CascadeWidth int
	// Seed drives all PRNGs (wiring, router selection).
	Seed int64
	// MaxActiveSenders bounds concurrent sends per endpoint (0 = all
	// links).
	MaxActiveSenders int
	// RetryLimit bounds attempts per message.
	RetryLimit int
	// ListenTimeout is the per-attempt reply watchdog in cycles.
	ListenTimeout uint64
	// Responder, when set, generates request-reply traffic: the function
	// receives the destination endpoint and request payload and returns
	// the reply payload.
	Responder func(dest int, payload []byte) []byte
	// ResponderDelay, when set, returns the cycles a destination waits
	// before its reply is ready; the connection is held open with
	// DATA-IDLE fill meanwhile.
	ResponderDelay func(dest int, payload []byte) int
	// Tracer, when set, observes router events. Tracing requires the
	// serial engine: Build rejects Tracer combined with Workers > 0,
	// because routers on different shards would interleave trace calls
	// nondeterministically. (The Recorder path below has no such
	// restriction — it buffers per shard and merges at the barrier.)
	Tracer core.Tracer
	// Recorder, when set, attaches the telemetry flight recorder: every
	// router, endpoint, the gauge sampler and any fault injector record
	// cycle-stamped events into per-shard buffers that are merged in
	// deterministic order at the cycle barrier. Works at every worker
	// count — recorded traces are byte-identical across them. A Recorder
	// instance must be wired into at most one Build (buffer registration
	// defines the merge order).
	Recorder *telemetry.Recorder
	// GaugePeriod is the cycle period of the per-cycle gauges (port
	// occupancy, open connections, queue depths) when Recorder is set;
	// 0 samples every cycle.
	GaugePeriod uint64
	// EngineMetrics, when set, attaches operational gauges to the cycle
	// engine: cycles-per-second and step-time sampled on a cycle grid,
	// per-shard phase times in parallel mode, and — on the kernel path —
	// the compiled plane's static shape. Purely observational: gauge
	// writes are atomic stores that never feed back into the model, so
	// results are bit-identical with metrics on or off (see
	// clock.EngineMetrics).
	EngineMetrics *clock.EngineMetrics
	// Kernel selects the compiled struct-of-arrays execution path: link
	// pipeline registers live in flat per-delay-class arenas shuttled by
	// batched copies, and router columns and endpoints are driven as
	// dense evaluation units instead of individually registered
	// components (see internal/kernel and docs/KERNEL.md). Every feature
	// — cascading, tracing, the recorder, fault injection, scan — works
	// identically, and results are bit-for-bit equal to the
	// per-component path at every worker count. The per-component path
	// remains the reference the kernel is differentially tested against.
	Kernel bool
	// Workers selects the engine execution mode: 0 (the default) runs
	// the serial reference engine; n >= 1 runs the partitioned parallel
	// engine with n shards (stage-major partitioning — each router
	// column and each endpoint is a co-location group; see
	// internal/clock). Results are bit-for-bit identical for every
	// value, so Workers is purely a throughput knob. Responder and
	// ResponderDelay run on worker goroutines when Workers > 0 and must
	// therefore be pure functions of their arguments; OnResult and
	// OnDeliver are unaffected (they are replayed in deterministic
	// order on the coordinating goroutine in both modes).
	Workers int
	// OnResult, when set, observes every completed message in addition to
	// the Results accumulator.
	OnResult func(nic.Result)
	// OnDeliver, when set, observes every destination-side delivery.
	OnDeliver func(dest int, payload []byte, intact bool)
}

func (p Params) withDefaults() Params {
	if p.Width == 0 {
		p.Width = 8
	}
	if p.DataPipe == 0 {
		p.DataPipe = 1
	}
	if p.LinkDelay == 0 {
		p.LinkDelay = 1
	}
	if p.CascadeWidth == 0 {
		p.CascadeWidth = 1
	}
	return p
}

// Network is an elaborated, runnable METRO network.
type Network struct {
	Params Params
	Topo   *topo.Topology
	Engine *clock.Engine
	// Routers holds lane 0 of every logical router; with CascadeWidth > 1
	// the full groups live in Cascades.
	Routers   [][]*core.Router
	Cascades  [][]*cascade.Group // nil entries when CascadeWidth == 1
	Endpoints []*nic.Endpoint
	// Compiled is the flattened execution plan when Params.Kernel is
	// set, nil on the per-component path.
	Compiled *kernel.Compiled

	injLinks [][]*link.Link     // [endpoint][k], lane 0
	outLinks [][][]*link.Link   // [stage][router][bp], lane 0
	injLanes [][][]*link.Link   // [endpoint][k][lane]
	outLanes [][][][]*link.Link // [stage][router][bp][lane]

	results []nic.Result
	nextID  uint64
	events  [][]event // per-endpoint callback buffers, drained by the collector
	netBuf  *telemetry.Buf
}

// event is one endpoint callback (completion or delivery) captured
// during Eval and replayed by the collector in deterministic order:
// cycle-major, endpoint-index minor, per-endpoint FIFO — exactly the
// order the serial engine's in-Eval callbacks produced before buffering
// existed. Using the same buffered path in serial and parallel modes
// makes callback ordering trivially identical between them.
type event struct {
	isResult bool
	result   nic.Result
	payload  []byte
	intact   bool
}

// collector is the unexported component that replays buffered endpoint
// callbacks. It is registered with plain Engine.Add — after every
// sharded component, before any driver — so in parallel mode it runs in
// the serialized epilogue: all endpoint Evals have completed (barrier),
// and drivers whose OnResult hooks mutate their own state and draw
// random numbers observe completions in the same order as a serial run.
type collector struct{ n *Network }

func (col *collector) Eval(cycle uint64) {
	n := col.n
	for e := range n.events {
		buf := n.events[e]
		for i := range buf {
			ev := buf[i]
			if ev.isResult {
				//metrovet:alloc per-completed-message accounting, amortized by slice growth
				n.results = append(n.results, ev.result)
				if n.Params.OnResult != nil {
					n.Params.OnResult(ev.result)
				}
			} else {
				n.Params.OnDeliver(e, ev.payload, ev.intact)
			}
			buf[i] = event{} // release payload references
		}
		n.events[e] = buf[:0]
	}
}

func (col *collector) Commit(cycle uint64) {}

// Build elaborates and wires the network.
func Build(p Params) (*Network, error) {
	p = p.withDefaults()
	top, err := topo.Build(p.Spec)
	if err != nil {
		return nil, err
	}
	n := &Network{Params: p, Topo: top, Engine: clock.New()}
	if p.Workers > 0 && p.Tracer != nil {
		return nil, fmt.Errorf("netsim: Tracer requires the serial engine (Workers = 0), got Workers = %d", p.Workers)
	}
	n.Engine.SetWorkers(p.Workers)
	if p.EngineMetrics != nil {
		n.Engine.SetMetrics(p.EngineMetrics)
	}

	// Stage-major shard partitioning: each router column (the logical
	// router at (stage, index) — every cascade lane — plus its output
	// links) and each endpoint (plus its injection links) is one
	// co-location group. Links could in fact live on any shard (their
	// Eval is empty and their Commit touches only their own registers);
	// grouping them with their driving component is a locality choice.
	// The affinity allocation order is a pure function of the topology,
	// keeping the partition deterministic.
	affCol := make([][]clock.ShardAffinity, len(p.Spec.Stages))
	for s := range affCol {
		affCol[s] = make([]clock.ShardAffinity, top.RoutersPerStage[s])
		for j := range affCol[s] {
			affCol[s][j] = n.Engine.NewShardAffinity()
		}
	}
	affEp := make([]clock.ShardAffinity, p.Spec.Endpoints)
	for e := range affEp {
		affEp[e] = n.Engine.NewShardAffinity()
	}

	// delayOf resolves the link pipeline depth for a tier (0 = injection,
	// s+1 = outputs of stage s).
	delayOf := func(tier int) int {
		if tier < len(p.StageLinkDelays) && p.StageLinkDelays[tier] > 0 {
			return p.StageLinkDelays[tier]
		}
		return p.LinkDelay
	}
	maxDelay := p.LinkDelay
	for _, d := range p.StageLinkDelays {
		if d > maxDelay {
			maxDelay = d
		}
	}
	hwOf := func(stage int) int {
		if stage < len(p.StageHeaderWords) && p.StageHeaderWords[stage] >= 0 {
			return p.StageHeaderWords[stage]
		}
		return p.HeaderWords
	}

	// Compiled-kernel layout. Units are numbered router columns first
	// (stage-major, matching the AddSharded registration order of the
	// per-component path, which is what makes the two schedules
	// bit-identical) and endpoints after. Link capacity per delay class
	// is counted exactly up front so the arenas are carved full.
	c := p.CascadeWidth
	nCols := 0
	colBase := make([]int, len(p.Spec.Stages))
	for s, rs := range top.RoutersPerStage {
		colBase[s] = nCols
		nCols += rs
	}
	colUnit := func(s, j int) int { return colBase[s] + j }
	epUnit := func(e int) int { return nCols + e }
	var (
		kb       *kernel.Builder
		unitRefs [][]kernel.LinkRef
		arenaFor map[int]*link.Arena
		arenaIdx map[int]int32
	)
	if p.Kernel {
		kb = kernel.NewBuilder()
		unitRefs = make([][]kernel.LinkRef, nCols+p.Spec.Endpoints)
		counts := make(map[int]int)
		var delayOrder []int
		tally := func(tier, links int) {
			d := delayOf(tier)
			if _, ok := counts[d]; !ok {
				delayOrder = append(delayOrder, d)
			}
			counts[d] += links
		}
		for _, refs := range top.Inject {
			tally(0, len(refs)*c)
		}
		for s := range top.Out {
			for j := range top.Out[s] {
				tally(s+1, len(top.Out[s][j])*c)
			}
		}
		arenaFor = make(map[int]*link.Arena, len(delayOrder))
		arenaIdx = make(map[int]int32, len(delayOrder))
		for _, d := range delayOrder {
			a := kb.Arena(d, counts[d])
			arenaFor[d] = a
			arenaIdx[d] = kb.ArenaIndex(a)
		}
	}
	// makeLink creates one physical link on whichever plane is selected:
	// a private allocation registered under the owning shard affinity
	// (per-component path), or a carve from the tier's delay-class arena
	// recorded in the adjacency table of both attached units (kernel
	// path).
	makeLink := func(tier int, name string, aff clock.ShardAffinity, ua, ub int) *link.Link {
		if kb == nil {
			l := link.New(name, delayOf(tier))
			n.Engine.AddSharded(aff, l)
			return l
		}
		d := delayOf(tier)
		a := arenaFor[d]
		ref := kernel.LinkRef{Arena: arenaIdx[d], Index: int32(a.Len())}
		l := a.New(name)
		unitRefs[ua] = append(unitRefs[ua], ref)
		unitRefs[ub] = append(unitRefs[ub], ref)
		return l
	}

	// Routers: one per lane; with cascading the lanes form a consistency
	// group sharing a random stream.
	lanes := make([][][]*core.Router, len(p.Spec.Stages)) // [stage][router][lane]
	n.Routers = make([][]*core.Router, len(p.Spec.Stages))
	n.Cascades = make([][]*cascade.Group, len(p.Spec.Stages))
	for s, st := range p.Spec.Stages {
		lanes[s] = make([][]*core.Router, top.RoutersPerStage[s])
		n.Routers[s] = make([]*core.Router, top.RoutersPerStage[s])
		n.Cascades[s] = make([]*cascade.Group, top.RoutersPerStage[s])
		for j := range n.Routers[s] {
			cfg := core.Config{
				Inputs:       st.Inputs,
				Outputs:      st.Outputs(),
				Width:        p.Width,
				MaxDilation:  st.Dilation,
				HeaderWords:  hwOf(s),
				DataPipe:     p.DataPipe,
				MaxVTD:       maxInt(maxDelay, 1),
				RandomInputs: 2,
				ScanPaths:    2,
			}
			set := core.DefaultSettings(cfg)
			set.Dilation = st.Dilation
			fast := p.FastReclaim
			for _, ds := range p.DetailedStages {
				if ds == s {
					fast = false
				}
			}
			for fp := range set.FastReclaim {
				set.FastReclaim[fp] = fast
			}
			seed := uint32(p.Seed)*2654435761 + uint32(s)*40503 + uint32(j)*9973 + 1
			if c == 1 {
				r := core.NewRouter(fmt.Sprintf("s%dr%d", s, j), cfg, set, prng.NewLFSR(seed))
				lanes[s][j] = []*core.Router{r}
			} else {
				g := cascade.NewGroup(fmt.Sprintf("s%dr%d", s, j), cfg, set, c, prng.NewShared(seed))
				n.Cascades[s][j] = g
				lanes[s][j] = make([]*core.Router, c)
				for k := 0; k < c; k++ {
					lanes[s][j][k] = g.Member(k)
				}
			}
			for lane, r := range lanes[s][j] {
				r.SetID(core.RouterID{Stage: s, Index: j, Lane: lane})
				if p.FirstFreeSelection {
					r.SetSelectionPolicy(core.SelectFirstFree)
				}
			}
			n.Routers[s][j] = lanes[s][j][0]
		}
	}

	// Endpoints.
	header := nic.HeaderSpec{Width: p.Width}
	for s, st := range p.Spec.Stages {
		header.Stages = append(header.Stages, nic.StageHeader{
			DirBits:     log2(st.Radix),
			HeaderWords: hwOf(s),
		})
	}
	n.Endpoints = make([]*nic.Endpoint, p.Spec.Endpoints)
	n.events = make([][]event, p.Spec.Endpoints)
	for e := 0; e < p.Spec.Endpoints; e++ {
		e := e
		cfg := nic.Config{
			ID:                e,
			Width:             p.Width,
			Lanes:             c,
			Header:            header,
			RouteDigits:       top.RouteDigits,
			AppendRouteDigits: top.AppendRouteDigits,
			MaxActiveSenders:  p.MaxActiveSenders,
			RetryLimit:        p.RetryLimit,
			ListenTimeout:     p.ListenTimeout,
			CloseGap:          p.DataPipe + 2,
			// Completions are buffered per endpoint and replayed by the
			// collector in endpoint-index order, so parallel endpoint
			// evaluation cannot perturb the observable result stream.
			OnResult: func(r nic.Result) {
				n.events[e] = append(n.events[e], event{isResult: true, result: r})
			},
		}
		if p.Responder != nil {
			cfg.Responder = func(payload []byte) []byte { return p.Responder(e, payload) }
		}
		if p.ResponderDelay != nil {
			cfg.ResponderDelay = func(payload []byte) int { return p.ResponderDelay(e, payload) }
		}
		if p.OnDeliver != nil {
			cfg.OnDeliver = func(payload []byte, intact bool) {
				n.events[e] = append(n.events[e], event{payload: payload, intact: intact})
			}
		}
		ep, err := nic.New(cfg)
		if err != nil {
			return nil, err
		}
		n.Endpoints[e] = ep
	}

	// Tracer wiring. The flight recorder path tees a per-column recording
	// tracer into every lane (the column's lanes are co-located on one
	// shard, so they may share a buffer); the legacy aggregate Tracer, if
	// any, rides along on the same chain.
	if p.Recorder != nil {
		recTracers := wireTelemetry(n, lanes)
		for s := range lanes {
			for j := range lanes[s] {
				t := core.Tee(p.Tracer, recTracers[s][j])
				for _, r := range lanes[s][j] {
					r.SetTracer(t)
				}
			}
		}
	} else if p.Tracer != nil {
		for s := range lanes {
			for j := range lanes[s] {
				for _, r := range lanes[s][j] {
					r.SetTracer(p.Tracer)
				}
			}
		}
	}

	// Links: injection, inter-stage, delivery — one physical link per
	// cascade lane.
	channel := func(ends []*link.End) nic.Channel {
		if c == 1 {
			return ends[0]
		}
		return cascade.NewWideChannel(ends, p.Width)
	}
	n.injLinks = make([][]*link.Link, p.Spec.Endpoints)
	n.injLanes = make([][][]*link.Link, p.Spec.Endpoints)
	for e, refs := range top.Inject {
		n.injLinks[e] = make([]*link.Link, len(refs))
		n.injLanes[e] = make([][]*link.Link, len(refs))
		for k, ref := range refs {
			ends := make([]*link.End, c)
			n.injLanes[e][k] = make([]*link.Link, c)
			for lane := 0; lane < c; lane++ {
				l := makeLink(0, fmt.Sprintf("ep%d.%d.l%d->%s", e, k, lane, ref),
					affEp[e], epUnit(e), colUnit(ref.Stage, ref.Index))
				n.injLanes[e][k][lane] = l
				ends[lane] = l.A()
				r := lanes[ref.Stage][ref.Index][lane]
				r.AttachForward(ref.Port, l.B())
				setTurnDelay(r, ref.Port, delayOf(0))
			}
			n.injLinks[e][k] = n.injLanes[e][k][0]
			n.Endpoints[e].AttachInject(channel(ends))
		}
	}
	n.outLinks = make([][][]*link.Link, len(p.Spec.Stages))
	n.outLanes = make([][][][]*link.Link, len(p.Spec.Stages))
	for s := range top.Out {
		n.outLinks[s] = make([][]*link.Link, len(top.Out[s]))
		n.outLanes[s] = make([][][]*link.Link, len(top.Out[s]))
		for j := range top.Out[s] {
			n.outLinks[s][j] = make([]*link.Link, len(top.Out[s][j]))
			n.outLanes[s][j] = make([][]*link.Link, len(top.Out[s][j]))
			for bp, ref := range top.Out[s][j] {
				ends := make([]*link.End, c)
				n.outLanes[s][j][bp] = make([]*link.Link, c)
				downUnit := epUnit(ref.Index)
				if ref.Kind != topo.KindEndpoint {
					downUnit = colUnit(ref.Stage, ref.Index)
				}
				for lane := 0; lane < c; lane++ {
					l := makeLink(s+1, fmt.Sprintf("s%dr%d.b%d.l%d->%s", s, j, bp, lane, ref),
						affCol[s][j], colUnit(s, j), downUnit)
					n.outLanes[s][j][bp][lane] = l
					up := lanes[s][j][lane]
					up.AttachBackward(bp, l.A())
					setTurnDelay(up, up.Config().Inputs+bp, delayOf(s+1))
					ends[lane] = l.B()
					if ref.Kind != topo.KindEndpoint {
						down := lanes[ref.Stage][ref.Index][lane]
						down.AttachForward(ref.Port, l.B())
						setTurnDelay(down, ref.Port, delayOf(s+1))
					}
				}
				n.outLinks[s][j][bp] = n.outLanes[s][j][bp][0]
				if ref.Kind == topo.KindEndpoint {
					n.Endpoints[ref.Index].AttachDeliver(channel(ends))
				}
			}
		}
	}

	if p.Kernel {
		// Unit order mirrors the AddSharded order below: router columns
		// stage-major, then endpoints. A cascaded column is one unit for
		// the same reason AddTo pins the whole group to one shard.
		for s := range n.Routers {
			for j := range n.Routers[s] {
				if c == 1 {
					kb.AddRouter(n.Routers[s][j], unitRefs[colUnit(s, j)]...)
				} else {
					kb.AddCascade(n.Cascades[s][j], unitRefs[colUnit(s, j)]...)
				}
			}
		}
		for e, ep := range n.Endpoints {
			kb.AddEndpoint(ep, unitRefs[epUnit(e)]...)
		}
		compiled, err := kb.Compile()
		if err != nil {
			return nil, err
		}
		n.Compiled = compiled
		n.Engine.SetKernel(compiled)
		if m := p.EngineMetrics; m != nil {
			compiled.PublishShape(m.KernelUnits, m.KernelLinks, m.KernelArenas)
		}
	} else {
		for s := range n.Routers {
			for j := range n.Routers[s] {
				if c == 1 {
					n.Engine.AddSharded(affCol[s][j], n.Routers[s][j])
				} else {
					// The group declares its own co-location contract: all
					// lanes plus the shared random stream on one shard.
					n.Cascades[s][j].AddTo(n.Engine, affCol[s][j])
				}
			}
		}
		for e, ep := range n.Endpoints {
			n.Engine.AddSharded(affEp[e], ep)
		}
	}
	// The collector must be the first serialized component: after every
	// sharded Eval (links, routers, endpoints), before any driver or
	// injector registered post-Build.
	n.Engine.Add(&collector{n: n})
	if p.Recorder != nil {
		period := p.GaugePeriod
		if period == 0 {
			period = 1
		}
		// The sampler reads the quiescent network at the barrier; the
		// flusher then drains every shard buffer in registration order.
		// Components registered after Build (drivers, fault injectors) run
		// after the flusher, so their events — stamped with the cycle they
		// occurred on — reach the ring one flush later, identically at
		// every worker count.
		n.Engine.Add(&gaugeSampler{n: n, buf: n.netBuf, period: period})
		n.Engine.Add(telemetry.Flusher{R: p.Recorder})
	}
	return n, nil
}

// Close releases the engine's worker goroutines when the network runs in
// parallel mode (Workers > 0); it is a no-op for the serial engine. The
// network remains usable afterwards — the pool restarts lazily on the
// next Step — so Close is safe to defer unconditionally. Sweeps that
// build many networks should call it to avoid accumulating idle
// goroutines.
func (n *Network) Close() { n.Engine.StopWorkers() }

// Send offers a message from src to dest and returns its ID.
//
//metrovet:mutator traffic injection entry point; called between cycles or from drivers in the serialized epilogue
//metrovet:shared traffic drivers run in the serialized epilogue, so injection cannot race shard Evals
//metrovet:bounds caller contract: src is an endpoint id below Spec.Endpoints, the size of Endpoints
func (n *Network) Send(src, dest int, payload []byte) uint64 {
	n.nextID++
	id := n.nextID
	n.Endpoints[src].Offer(nic.Message{
		ID: id, Src: src, Dest: dest,
		Payload: payload, Created: n.Engine.Cycle(),
	})
	return id
}

// Run advances the network n cycles.
func (n *Network) Run(cycles uint64) { n.Engine.Run(cycles) }

// RunUntilQuiet steps until no endpoint has queued or in-flight messages,
// up to max cycles. It returns true if the network went quiet.
func (n *Network) RunUntilQuiet(max uint64) bool {
	return n.Engine.RunUntil(func() bool {
		for _, ep := range n.Endpoints {
			if ep.QueueLen() > 0 || ep.Busy() || ep.Receiving() {
				return false
			}
		}
		return true
	}, max)
}

// Results returns the completed-message reports accumulated so far.
func (n *Network) Results() []nic.Result { return n.results }

// TakeResults returns and clears the accumulated reports.
//
//metrovet:mutator measurement harvesting between runs; does not touch model state
func (n *Network) TakeResults() []nic.Result {
	r := n.results
	n.results = nil
	return r
}

// ResetResults clears the accumulated reports while keeping the backing
// array, so long-running drivers that harvest via Results can hold the
// steady-state cycle at zero allocations. It invalidates slices previously
// returned by Results (TakeResults is the transfer-of-ownership variant).
//
//metrovet:mutator measurement harvesting between runs; does not touch model state
func (n *Network) ResetResults() { n.results = n.results[:0] }

// RouterAt returns the router at (stage, index).
//
//metrovet:bounds caller contract: (stage, index) addresses a router of the built topology
func (n *Network) RouterAt(stage, index int) *core.Router { return n.Routers[stage][index] }

// InjectLink returns endpoint e's k-th injection link.
//
//metrovet:bounds caller contract: e is an endpoint id and k one of its injection links
func (n *Network) InjectLink(e, k int) *link.Link { return n.injLinks[e][k] }

// OutLink returns the link attached to backward port bp of router (stage,
// index).
//
//metrovet:bounds caller contract: (stage, index, bp) addresses a built output port
func (n *Network) OutLink(stage, index, bp int) *link.Link { return n.outLinks[stage][index][bp] }

// EachLink visits every link in the network.
func (n *Network) EachLink(f func(*link.Link)) {
	for _, ls := range n.injLinks {
		for _, l := range ls {
			f(l)
		}
	}
	for _, stage := range n.outLinks {
		for _, router := range stage {
			for _, l := range router {
				f(l)
			}
		}
	}
}

// KillRouter disables every port of a logical router (all cascade lanes),
// modeling its complete loss.
//
//metrovet:shared fault application runs in the serialized epilogue; reconfiguring the victim routers is its purpose
//metrovet:alloc per-fault-event scratch bounded by the cascade width; faults are rare control events, not per-cycle work
//metrovet:bounds caller contract: (stage, index) addresses a router of the built topology; Routers, Cascades and outLanes share its shape
func (n *Network) KillRouter(stage, index int) {
	routers := []*core.Router{n.Routers[stage][index]}
	if g := n.Cascades[stage][index]; g != nil {
		routers = routers[:0]
		for k := 0; k < g.Width(); k++ {
			routers = append(routers, g.Member(k))
		}
	}
	for _, r := range routers {
		for fp := 0; fp < r.Config().Inputs; fp++ {
			r.SetForwardEnabled(fp, false)
		}
		for bp := 0; bp < r.Config().Outputs; bp++ {
			r.SetBackwardEnabled(bp, false)
		}
	}
	// Sever its attached wires so circuits in flight die too.
	for bp := range n.outLanes[stage][index] {
		for _, l := range n.outLanes[stage][index][bp] {
			l.Kill()
		}
	}
}

// MessageWords returns the number of channel words a payload of the given
// byte length occupies, including header, end-to-end checksum and TURN —
// useful for sizing workloads against channel bandwidth.
func (n *Network) MessageWords(payloadBytes int) int {
	digits := n.Topo.RouteDigits(0)
	header := nic.HeaderSpec{Width: n.Params.Width}
	for s, st := range n.Params.Spec.Stages {
		hw := n.Params.HeaderWords
		if s < len(n.Params.StageHeaderWords) && n.Params.StageHeaderWords[s] >= 0 {
			hw = n.Params.StageHeaderWords[s]
		}
		header.Stages = append(header.Stages, nic.StageHeader{
			DirBits:     log2(st.Radix),
			HeaderWords: hw,
		})
	}
	h := header.Build(digits)
	logical := n.Params.Width * n.Params.CascadeWidth
	payloadWords := len(nic.PackBytes(make([]byte, payloadBytes), logical))
	return len(h) + payloadWords + word.ChecksumWords(logical) + 1
}

// setTurnDelay records a port's attached wire depth in the router's
// Table 2 turn-delay register, as a scan CONFIG load would.
func setTurnDelay(r *core.Router, port, delay int) {
	set := r.Settings()
	if port >= 0 && port < len(set.TurnDelay) {
		set.TurnDelay[port] = delay
		// Settings were validated at construction; the delay fits MaxVTD
		// by construction (MaxVTD = max link delay).
		_ = r.ApplySettings(set)
	}
}

func log2(v int) int {
	n := 0
	for 1<<uint(n) < v {
		n++
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
