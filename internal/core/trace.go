package core

// Tracer receives router-level events for debugging, experiments and the
// example programs. All methods are invoked during Eval; implementations
// must not mutate simulation state. A nil tracer disables tracing.
type Tracer interface {
	// Allocated reports a successful connection setup: forward port fp was
	// switched to backward port bp.
	Allocated(cycle uint64, router string, fp, bp int)
	// Blocked reports a connection request that found no available
	// backward port in direction dir. fast reports whether fast path
	// reclamation (BCB) or a detailed reply will handle it.
	Blocked(cycle uint64, router string, fp, dir int, fast bool)
	// Released reports that forward port fp's connection closed and its
	// backward port (bp, or -1 if the connection was blocked) was freed.
	Released(cycle uint64, router string, fp, bp int)
	// Reversed reports a connection reversal completing at this router.
	// towardSource is true when data will now flow toward the original
	// source.
	Reversed(cycle uint64, router string, fp int, towardSource bool)
}

// NopTracer is a Tracer that ignores all events.
type NopTracer struct{}

// Allocated implements Tracer.
func (NopTracer) Allocated(uint64, string, int, int) {}

// Blocked implements Tracer.
func (NopTracer) Blocked(uint64, string, int, int, bool) {}

// Released implements Tracer.
func (NopTracer) Released(uint64, string, int, int) {}

// Reversed implements Tracer.
func (NopTracer) Reversed(uint64, string, int, bool) {}
