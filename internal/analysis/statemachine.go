package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"path"
	"sort"
	"strings"
)

// This file implements the state-machine extraction pass: it recovers the
// protocol state machines (the Section 5 forward-port protocol, the IEEE
// 1149.1 TAP, the NIC send/receive engines) from the switch/assignment
// structure of the model code and renders each as a sorted transition
// table. The tables are checked in under docs/statemachines/ and
// golden-diffed in CI: any code change that alters protocol behaviour
// fails with a readable table diff instead of a mystery regression three
// packages away.
//
// The extraction is deliberately syntactic. It understands the idioms the
// model actually uses — switches over the state field, direct assignments
// of state constants, struct resets via composite literals (an absent
// state field is the zero-valued constant), state constants threaded
// through single-level helper calls (`r.flip(cycle, fp, fpReversed)`),
// and `return <const>` in functions returning the state type — and makes
// no attempt at general data-flow analysis. A write it cannot resolve to
// a constant contributes no transition; a write outside any switch over
// the machine's state is recorded with from-state "*".

// MachineSpec names one state machine to extract: the loader pattern of
// the defining package and the enum type name within it.
type MachineSpec struct {
	Pattern string // e.g. "./internal/core"
	Type    string // e.g. "fpState"
}

// Label returns the display name ("core.fpState").
func (s MachineSpec) Label() string {
	return path.Base(strings.TrimSuffix(s.Pattern, "/...")) + "." + s.Type
}

// FileName returns the golden-table file name under docs/statemachines/.
func (s MachineSpec) FileName() string { return s.Label() + ".txt" }

// DefaultMachines lists the protocol machines with checked-in golden
// tables. The NIC parser's pPhase is deliberately absent: it is a framing
// scanner over a reply stream, not a protocol agent.
func DefaultMachines() []MachineSpec {
	return []MachineSpec{
		{Pattern: "./internal/core", Type: "fpState"},
		{Pattern: "./internal/scan", Type: "State"},
		{Pattern: "./internal/nic", Type: "sState"},
		{Pattern: "./internal/nic", Type: "rState"},
	}
}

// Transition is one extracted edge: in From, under Guard, the code in Via
// moves the machine to Next. From is "*" for writes outside any switch
// over the machine's state; Guard is the conjunction of the enclosing
// conditions, empty when unconditional.
type Transition struct {
	From  string
	Guard string
	Next  string
	Via   string
}

// Machine is one extracted state machine.
type Machine struct {
	Label       string
	ImportPath  string
	States      []string // declared constants in value order (aliases dropped)
	Transitions []Transition
}

// ExtractMachine recovers the state machine of the named enum type from
// package p's compiled files.
func ExtractMachine(p *Package, typeName string) (*Machine, error) {
	if p.Types == nil || p.Info == nil {
		return nil, fmt.Errorf("analysis: %s: no type information", p.ImportPath)
	}
	// Resolve the type through Info, not p.Types: when the package has
	// in-package tests, Info is a separate check unit whose objects are
	// what TypeOf returns for expressions — mixing units would make every
	// types.Identical comparison fail.
	var tn *types.TypeName
	for _, obj := range p.Info.Defs {
		t, ok := obj.(*types.TypeName)
		if ok && t.Name() == typeName && t.Pkg() != nil && t.Parent() == t.Pkg().Scope() {
			tn = t
			break
		}
	}
	if tn == nil {
		return nil, fmt.Errorf("analysis: %s: no type %s", p.ImportPath, typeName)
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil, fmt.Errorf("analysis: %s.%s: not a defined type", p.ImportPath, typeName)
	}
	consts := enumConstants(tn.Pkg(), named)
	if len(consts) < 2 {
		return nil, fmt.Errorf("analysis: %s.%s: not an enum (fewer than 2 constants)", p.ImportPath, typeName)
	}
	w := &smWalker{
		p:       p,
		named:   named,
		nameFor: map[string]string{},
		funcs:   map[types.Object]*ast.FuncDecl{},
		called:  map[*ast.FuncDecl]bool{},
		out:     map[Transition]bool{},
	}
	for _, c := range consts {
		key := c.Val().ExactString()
		if _, dup := w.nameFor[key]; !dup {
			w.nameFor[key] = c.Name()
			w.states = append(w.states, c.Name())
		}
	}
	var decls []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			if obj := p.ObjectOf(fd.Name); obj != nil {
				w.funcs[obj] = fd
			}
		}
	}
	// Pass 1: find every function invoked as a statement (discarding any
	// results); those are walked inline from their callers, with the
	// caller's state context, rather than as roots of their own.
	for _, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			if callee := w.calleeDecl(es.X); callee != nil {
				w.called[callee] = true
			}
			return true
		})
	}
	// Pass 2: walk each root. Functions used in value position (such as
	// scan's State.Next, called as `t.state = t.state.Next(tms)`) remain
	// roots, which is what lets their return statements carry the table.
	for _, fd := range decls {
		if w.called[fd] {
			continue
		}
		w.walkFunc(fd, smCtx{via: funcDisplayName(fd), visiting: map[*ast.FuncDecl]bool{fd: true}})
	}
	m := &Machine{ImportPath: p.ImportPath, States: w.states}
	for t := range w.out {
		m.Transitions = append(m.Transitions, t)
	}
	m.sortTransitions()
	return m, nil
}

// smCtx is the walk context: the possible current states (nil = unknown,
// rendered "*"), the accumulated guard conjunction, the function whose
// body is being walked, constant bindings for its state-typed parameters,
// and the inlining chain (recursion guard).
type smCtx struct {
	froms    []string
	guards   []string
	via      string
	args     map[types.Object]string
	visiting map[*ast.FuncDecl]bool
}

func (c smCtx) withGuard(g string) smCtx {
	c.guards = append(append([]string{}, c.guards...), g)
	return c
}

func (c smCtx) withFroms(froms []string) smCtx {
	c.froms = froms
	return c
}

type smWalker struct {
	p       *Package
	named   *types.Named
	nameFor map[string]string // constant value -> canonical name
	states  []string
	funcs   map[types.Object]*ast.FuncDecl
	called  map[*ast.FuncDecl]bool
	out     map[Transition]bool

	results []bool // per result position of the function being walked: is machine-typed
}

// calleeDecl resolves an expression statement's call to a same-package
// function declaration, or nil.
func (w *smWalker) calleeDecl(x ast.Expr) *ast.FuncDecl {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return nil
	}
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = w.p.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = w.p.ObjectOf(fun.Sel)
	}
	return w.funcs[obj]
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if r := recvTypeName(fd); r != "" {
			return r + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

func (w *smWalker) walkFunc(fd *ast.FuncDecl, c smCtx) {
	// Record which result positions carry the machine type so return
	// statements can contribute transitions.
	saved := w.results
	w.results = nil
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			isM := types.Identical(w.p.TypeOf(field.Type), w.named)
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				w.results = append(w.results, isM)
			}
		}
	}
	w.walkStmt(fd.Body, c)
	w.results = saved
}

func (w *smWalker) walkStmt(s ast.Stmt, c smCtx) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range st.List {
			w.walkStmt(sub, c)
		}
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, c)
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, c)
		}
		cond := types.ExprString(st.Cond)
		w.walkStmt(st.Body, c.withGuard(cond))
		if st.Else != nil {
			w.walkStmt(st.Else, c.withGuard("!("+cond+")"))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, c)
		}
		w.walkStmt(st.Body, c)
	case *ast.RangeStmt:
		w.walkStmt(st.Body, c)
	case *ast.SwitchStmt:
		w.walkSwitch(st, c)
	case *ast.TypeSwitchStmt:
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, sub := range cc.Body {
					w.walkStmt(sub, c)
				}
			}
		}
	case *ast.AssignStmt:
		w.walkAssign(st, c)
	case *ast.ReturnStmt:
		for i, res := range st.Results {
			if i < len(w.results) && w.results[i] {
				if next, ok := w.resolveState(res, c); ok {
					w.record(c, next)
				}
			}
		}
	case *ast.ExprStmt:
		if callee := w.calleeDecl(st.X); callee != nil && !c.visiting[callee] {
			call := ast.Unparen(st.X).(*ast.CallExpr)
			w.inlineCall(call, callee, c)
		}
	}
}

// inlineCall walks a statement-called same-package function with the
// caller's state context, binding state-typed parameters to the constant
// arguments at this call site (`r.flip(cycle, fp, fpReversed)` binds `to`
// to fpReversed).
func (w *smWalker) inlineCall(call *ast.CallExpr, callee *ast.FuncDecl, c smCtx) {
	args := map[types.Object]string{}
	if callee.Type.Params != nil {
		i := 0
		for _, field := range callee.Type.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			for j := 0; j < n; j++ {
				if i < len(call.Args) && types.Identical(w.p.TypeOf(field.Type), w.named) {
					if name, ok := w.resolveState(call.Args[i], c); ok && j < len(field.Names) {
						if obj := w.p.ObjectOf(field.Names[j]); obj != nil {
							args[obj] = name
						}
					}
				}
				i++
			}
		}
	}
	visiting := map[*ast.FuncDecl]bool{callee: true}
	for fd := range c.visiting {
		visiting[fd] = true
	}
	w.walkFunc(callee, smCtx{
		froms:    c.froms,
		guards:   c.guards,
		via:      funcDisplayName(callee),
		args:     args,
		visiting: visiting,
	})
}

// walkSwitch dispatches on the switch's relationship to the machine: a
// switch over the state itself re-keys the from-state context; any other
// switch contributes its case conditions as guards.
func (w *smWalker) walkSwitch(sw *ast.SwitchStmt, c smCtx) {
	if sw.Init != nil {
		w.walkStmt(sw.Init, c)
	}
	if sw.Tag != nil && types.Identical(w.p.TypeOf(sw.Tag), w.named) {
		if w.walkStateSwitch(sw, c) {
			return
		}
	}
	tag := ""
	if sw.Tag != nil {
		tag = types.ExprString(sw.Tag)
	}
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		sub := c.withGuard(caseGuard(tag, cc))
		for _, stmt := range cc.Body {
			w.walkStmt(stmt, sub)
		}
	}
}

// caseGuard renders one case clause of a non-state switch as a guard.
func caseGuard(tag string, cc *ast.CaseClause) string {
	if cc.List == nil {
		if tag == "" {
			return "otherwise"
		}
		return tag + " otherwise"
	}
	rendered := make([]string, len(cc.List))
	for i, e := range cc.List {
		rendered[i] = types.ExprString(e)
	}
	if tag == "" {
		return strings.Join(rendered, " || ")
	}
	if len(rendered) == 1 {
		return tag + " == " + rendered[0]
	}
	return tag + " in {" + strings.Join(rendered, ", ") + "}"
}

// walkStateSwitch handles a switch over the machine's state, narrowing
// the from-state context per case arm. It reports false (fall back to
// guard rendering) when a case expression does not resolve to a constant.
func (w *smWalker) walkStateSwitch(sw *ast.SwitchStmt, c smCtx) bool {
	handled := map[string]bool{}
	type arm struct {
		cc    *ast.CaseClause
		froms []string
	}
	var arms []arm
	var def *ast.CaseClause
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			def = cc
			continue
		}
		var froms []string
		for _, e := range cc.List {
			name, ok := w.resolveState(e, c)
			if !ok {
				return false
			}
			froms = append(froms, name)
			handled[name] = true
		}
		arms = append(arms, arm{cc, froms})
	}
	for _, a := range arms {
		sub := c.withFroms(a.froms)
		for _, stmt := range a.cc.Body {
			w.walkStmt(stmt, sub)
		}
	}
	if def != nil {
		var rest []string
		for _, s := range w.states {
			if !handled[s] {
				rest = append(rest, s)
			}
		}
		// A default arm with every state named is an out-of-band guard;
		// nothing in it is a protocol transition.
		if len(rest) > 0 {
			sub := c.withFroms(rest)
			for _, stmt := range def.Body {
				w.walkStmt(stmt, sub)
			}
		}
	}
	return true
}

// walkAssign records state writes: direct assignment of a resolvable
// state value to a state-typed location, and whole-struct resets via
// composite literals (where an absent state field means the zero-valued
// constant). Function literals on the right-hand side are walked with a
// fresh context: when they run is unknown.
func (w *smWalker) walkAssign(st *ast.AssignStmt, c smCtx) {
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			lt := w.p.TypeOf(lhs)
			if lt == nil {
				continue
			}
			if types.Identical(lt, w.named) {
				if next, ok := w.resolveState(st.Rhs[i], c); ok {
					w.record(c, next)
				}
				continue
			}
			if cl, ok := ast.Unparen(st.Rhs[i]).(*ast.CompositeLit); ok {
				if next, ok := w.compositeState(lt, cl, c); ok {
					w.record(c, next)
				}
			}
		}
	}
	for _, rhs := range st.Rhs {
		if fl, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
			w.walkStmt(fl.Body, smCtx{via: c.via + ".func", visiting: c.visiting})
		}
	}
}

// compositeState resolves the machine-typed field of a struct composite
// literal assigned over a struct that has one ("*p = fwdPort{state: X}"
// or a full reset where the absent field is the zero state).
func (w *smWalker) compositeState(lt types.Type, cl *ast.CompositeLit, c smCtx) (string, bool) {
	strct, ok := lt.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	field := ""
	for i := 0; i < strct.NumFields(); i++ {
		if types.Identical(strct.Field(i).Type(), w.named) {
			field = strct.Field(i).Name()
			break
		}
	}
	if field == "" {
		return "", false
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return "", false // positional literal: out of scope
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == field {
			return w.resolveState(kv.Value, c)
		}
	}
	// State field absent: the zero-valued constant.
	name, ok := w.nameFor["0"]
	return name, ok
}

// resolveState resolves an expression to a state-constant name: a typed
// constant of the machine's type (by value, so aliases canonicalize) or a
// parameter bound to one at the current call site.
func (w *smWalker) resolveState(e ast.Expr, c smCtx) (string, bool) {
	if v := constValueOf(w.p, e); v != nil {
		if types.Identical(w.p.TypeOf(e), w.named) {
			name, ok := w.nameFor[v.ExactString()]
			return name, ok
		}
		return "", false
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && c.args != nil {
		if name, ok := c.args[w.p.ObjectOf(id)]; ok {
			return name, true
		}
	}
	return "", false
}

func (w *smWalker) record(c smCtx, next string) {
	froms := c.froms
	if froms == nil {
		froms = []string{"*"}
	}
	guard := strings.Join(c.guards, " && ")
	for _, f := range froms {
		w.out[Transition{From: f, Guard: guard, Next: next, Via: c.via}] = true
	}
}

func (m *Machine) sortTransitions() {
	idx := map[string]int{"*": len(m.States)}
	for i, s := range m.States {
		idx[s] = i
	}
	sort.Slice(m.Transitions, func(i, j int) bool {
		a, b := m.Transitions[i], m.Transitions[j]
		if idx[a.From] != idx[b.From] {
			return idx[a.From] < idx[b.From]
		}
		if idx[a.Next] != idx[b.Next] {
			return idx[a.Next] < idx[b.Next]
		}
		if a.Via != b.Via {
			return a.Via < b.Via
		}
		return a.Guard < b.Guard
	})
}

// Render produces the golden-table text form: a header, the state
// alphabet, and one aligned "from | guard | next | via" line per
// transition, sorted for stable diffs.
func (m *Machine) Render(label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# metrovet state machine: %s (package %s)\n", label, m.ImportPath)
	b.WriteString("# Regenerate: go run ./cmd/metrovet -write-machines docs/statemachines\n")
	b.WriteString("# Format: from-state | guard | next-state | via. \"*\" = write outside\n")
	b.WriteString("# any switch over the machine's state; empty guard = unconditional.\n")
	b.WriteString("\n")
	fmt.Fprintf(&b, "states: %s\n\n", strings.Join(m.States, " "))
	wFrom, wGuard, wNext := 0, 0, 0
	for _, t := range m.Transitions {
		wFrom = max(wFrom, len(t.From))
		wGuard = max(wGuard, len(t.Guard))
		wNext = max(wNext, len(t.Next))
	}
	for _, t := range m.Transitions {
		fmt.Fprintf(&b, "%-*s | %-*s | %-*s | %s\n", wFrom, t.From, wGuard, t.Guard, wNext, t.Next, t.Via)
	}
	return b.String()
}

// DiffTables compares a checked-in golden table against a freshly
// extracted one, returning human-readable line diffs (nil when equal).
func DiffTables(want, got string) []string {
	if want == got {
		return nil
	}
	wl := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gl := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wantSet := map[string]bool{}
	for _, l := range wl {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range gl {
		gotSet[l] = true
	}
	var out []string
	for _, l := range wl {
		if !gotSet[l] {
			out = append(out, "- "+l)
		}
	}
	for _, l := range gl {
		if !wantSet[l] {
			out = append(out, "+ "+l)
		}
	}
	if len(out) == 0 {
		out = append(out, "(line order differs)")
	}
	return out
}
