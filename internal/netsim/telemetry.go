package netsim

import (
	"math/bits"

	"metro/internal/core"
	"metro/internal/telemetry"
)

// wireTelemetry attaches the flight recorder to a network under
// construction: one shard-local buffer per router column (all cascade
// lanes of a logical router are co-located by construction), one per
// endpoint, and one network-scope buffer for the serialized-epilogue
// emitters (gauge sampler, fault injector). Buffer registration order —
// router columns stage-major, then endpoints, then the network buffer —
// is a pure function of the topology, so the recorder's within-cycle
// merge order is identical under the serial and parallel engines.
//
// The returned router tracers are indexed [stage][router]; Build tees
// them into each lane's tracer chain.
func wireTelemetry(n *Network, lanes [][][]*core.Router) [][]core.Tracer {
	rec := n.Params.Recorder
	tracers := make([][]core.Tracer, len(lanes))
	for s := range lanes {
		tracers[s] = make([]core.Tracer, len(lanes[s]))
		for j := range lanes[s] {
			tracers[s][j] = telemetry.RouterTracer(rec.NewBuf())
		}
	}
	for _, ep := range n.Endpoints {
		ep.SetTracer(telemetry.EndpointTracer(rec.NewBuf()))
	}
	n.netBuf = rec.NewBuf()
	return tracers
}

// FaultSink returns the network-scope telemetry buffer serialized
// epilogue emitters (the fault injector) record into, or nil when the
// network was built without a Recorder.
func (n *Network) FaultSink() *telemetry.Buf { return n.netBuf }

// gaugeSampler is the per-cycle gauge emitter: port occupancy and open
// connections per stage, endpoint queue depths, and in-flight endpoint
// count. It registers in the serialized epilogue (plain Engine.Add), so
// it observes the network between the sharded Evals and the commit —
// the same quiescent window the collector uses — and only reads.
type gaugeSampler struct {
	n      *Network
	buf    *telemetry.Buf
	period uint64
}

// Eval samples every gauge when the cycle lands on the sampling period.
//
//metrovet:shared read-only sampler in the serialized epilogue: every sharded Eval has completed at the barrier, and nothing is mutated
//metrovet:bounds j ranges over Routers[s] itself
//metrovet:truncate gauge counts are bounded by port, router and endpoint counts, far below 2^31
func (g *gaugeSampler) Eval(cycle uint64) {
	if cycle%g.period != 0 {
		return
	}
	for s := range g.n.Routers {
		conns, busy := 0, 0
		for j := range g.n.Routers[s] {
			r := g.n.Routers[s][j]
			conns += r.ConnectionCount()
			busy += bits.OnesCount64(r.BackwardInUse())
		}
		g.buf.Emit(telemetry.Event{
			Cycle: cycle, Src: telemetry.NetworkSource(s),
			Kind: telemetry.EvGaugeConns, A: int32(conns),
		})
		g.buf.Emit(telemetry.Event{
			Cycle: cycle, Src: telemetry.NetworkSource(s),
			Kind: telemetry.EvGaugeBusyPorts, A: int32(busy),
		})
	}
	queued, deepest, inflight := 0, 0, 0
	for _, ep := range g.n.Endpoints {
		q := ep.QueueLen()
		queued += q
		if q > deepest {
			deepest = q
		}
		if ep.Busy() {
			inflight++
		}
	}
	g.buf.Emit(telemetry.Event{
		Cycle: cycle, Src: telemetry.NetworkSource(-1),
		Kind: telemetry.EvGaugeQueueDepth, A: int32(queued), B: int32(deepest),
	})
	g.buf.Emit(telemetry.Event{
		Cycle: cycle, Src: telemetry.NetworkSource(-1),
		Kind: telemetry.EvGaugeInFlight, A: int32(inflight),
	})
}

// Commit implements clock.Component.
func (g *gaugeSampler) Commit(cycle uint64) {}
