package main_test

import (
	"testing"

	"metro/internal/clitest"
)

// TestGoldenEnsemble pins the -v ensemble listing and the oracle
// summary table for a tiny fixed-seed run. Shrinking is disabled so a
// regression in any oracle fails the golden diff directly rather than
// spending the time budget minimizing it.
func TestGoldenEnsemble(t *testing.T) {
	clitest.Golden(t, "ensemble", "metrofuzz", "-seeds", "3", "-shrink=false", "-v")
}

// TestReplayRejectsBadSpec pins the documented exit code 2 for a spec
// the decoder refuses — scripts drive the replay path and distinguish
// "scenario failed" (1) from "spec malformed" (2).
func TestReplayRejectsBadSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	clitest.ExitCode(t, 2, "metrofuzz", "-replay", "mf9;nonsense")
}
