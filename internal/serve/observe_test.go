package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"log/slog"

	"metro/internal/metrics"
)

// metricsGolden is the complete /v1/metrics body of a fresh server with
// Workers=2, QueueDepth=8, CacheBytes=1MiB. A fresh scrape carries no
// wallclock-derived values, so the exposition is fully deterministic —
// this test pins the whole metric namespace: any added, renamed, or
// re-helped metric shows up as a diff here.
const metricsGolden = `# HELP serve_admission_total Submission admission outcomes; the sum is total submissions.
# TYPE serve_admission_total counter
serve_admission_total{outcome="cache_hit"} 0
serve_admission_total{outcome="coalesced"} 0
serve_admission_total{outcome="enqueued"} 0
serve_admission_total{outcome="rejected_draining"} 0
serve_admission_total{outcome="rejected_full"} 0
# HELP serve_cache_budget_bytes Result-cache LRU byte budget.
# TYPE serve_cache_budget_bytes gauge
serve_cache_budget_bytes 1048576
# HELP serve_cache_bytes Bytes of cached result bodies.
# TYPE serve_cache_bytes gauge
serve_cache_bytes 0
# HELP serve_cache_entries Results currently cached.
# TYPE serve_cache_entries gauge
serve_cache_entries 0
# HELP serve_cache_evictions_total Result-cache LRU evictions.
# TYPE serve_cache_evictions_total counter
serve_cache_evictions_total 0
# HELP serve_cache_hits_total Result-cache hits.
# TYPE serve_cache_hits_total counter
serve_cache_hits_total 0
# HELP serve_cache_misses_total Result-cache misses.
# TYPE serve_cache_misses_total counter
serve_cache_misses_total 0
# HELP serve_draining 1 while the server is draining, else 0.
# TYPE serve_draining gauge
serve_draining 0
# HELP serve_http_requests_total HTTP requests by mux route pattern and status code.
# TYPE serve_http_requests_total counter
# HELP serve_job_duration_seconds Wall time per executed job by outcome; bucket counts double as per-outcome job totals.
# TYPE serve_job_duration_seconds histogram
serve_job_duration_seconds_bucket{outcome="deadline",le="0.01"} 0
serve_job_duration_seconds_bucket{outcome="deadline",le="0.05"} 0
serve_job_duration_seconds_bucket{outcome="deadline",le="0.25"} 0
serve_job_duration_seconds_bucket{outcome="deadline",le="1"} 0
serve_job_duration_seconds_bucket{outcome="deadline",le="5"} 0
serve_job_duration_seconds_bucket{outcome="deadline",le="30"} 0
serve_job_duration_seconds_bucket{outcome="deadline",le="120"} 0
serve_job_duration_seconds_bucket{outcome="deadline",le="+Inf"} 0
serve_job_duration_seconds_sum{outcome="deadline"} 0
serve_job_duration_seconds_count{outcome="deadline"} 0
serve_job_duration_seconds_bucket{outcome="failed",le="0.01"} 0
serve_job_duration_seconds_bucket{outcome="failed",le="0.05"} 0
serve_job_duration_seconds_bucket{outcome="failed",le="0.25"} 0
serve_job_duration_seconds_bucket{outcome="failed",le="1"} 0
serve_job_duration_seconds_bucket{outcome="failed",le="5"} 0
serve_job_duration_seconds_bucket{outcome="failed",le="30"} 0
serve_job_duration_seconds_bucket{outcome="failed",le="120"} 0
serve_job_duration_seconds_bucket{outcome="failed",le="+Inf"} 0
serve_job_duration_seconds_sum{outcome="failed"} 0
serve_job_duration_seconds_count{outcome="failed"} 0
serve_job_duration_seconds_bucket{outcome="passed",le="0.01"} 0
serve_job_duration_seconds_bucket{outcome="passed",le="0.05"} 0
serve_job_duration_seconds_bucket{outcome="passed",le="0.25"} 0
serve_job_duration_seconds_bucket{outcome="passed",le="1"} 0
serve_job_duration_seconds_bucket{outcome="passed",le="5"} 0
serve_job_duration_seconds_bucket{outcome="passed",le="30"} 0
serve_job_duration_seconds_bucket{outcome="passed",le="120"} 0
serve_job_duration_seconds_bucket{outcome="passed",le="+Inf"} 0
serve_job_duration_seconds_sum{outcome="passed"} 0
serve_job_duration_seconds_count{outcome="passed"} 0
# HELP serve_jobs_executed_total Jobs a worker actually simulated (cache hits and coalesced submissions excluded).
# TYPE serve_jobs_executed_total counter
serve_jobs_executed_total 0
# HELP serve_jobs_inflight Jobs currently executing on workers (busy workers).
# TYPE serve_jobs_inflight gauge
serve_jobs_inflight 0
# HELP serve_queue_capacity Admission queue bound; submissions beyond it see 429.
# TYPE serve_queue_capacity gauge
serve_queue_capacity 8
# HELP serve_queue_depth Jobs waiting in the admission queue.
# TYPE serve_queue_depth gauge
serve_queue_depth 0
# HELP serve_queue_wait_seconds Time jobs spent queued before a worker picked them up.
# TYPE serve_queue_wait_seconds histogram
serve_queue_wait_seconds_bucket{le="0.001"} 0
serve_queue_wait_seconds_bucket{le="0.005"} 0
serve_queue_wait_seconds_bucket{le="0.02"} 0
serve_queue_wait_seconds_bucket{le="0.1"} 0
serve_queue_wait_seconds_bucket{le="0.5"} 0
serve_queue_wait_seconds_bucket{le="2"} 0
serve_queue_wait_seconds_bucket{le="10"} 0
serve_queue_wait_seconds_bucket{le="+Inf"} 0
serve_queue_wait_seconds_sum 0
serve_queue_wait_seconds_count 0
# HELP serve_sse_dropped_frames_total SSE frames dropped because a subscriber's buffer was full (slow client).
# TYPE serve_sse_dropped_frames_total counter
serve_sse_dropped_frames_total 0
# HELP serve_sse_subscribers Open SSE event-stream subscriptions across all jobs.
# TYPE serve_sse_subscribers gauge
serve_sse_subscribers 0
# HELP serve_workers Configured simulation worker fleet size.
# TYPE serve_workers gauge
serve_workers 2
# HELP sim_cycles_per_second Engine throughput in simulated cycles per second, sampled on the metrics cycle grid; last-writer-wins across concurrent jobs.
# TYPE sim_cycles_per_second gauge
sim_cycles_per_second 0
# HELP sim_job_delivered_throughput Last completed job: delivered messages per simulated cycle.
# TYPE sim_job_delivered_throughput gauge
sim_job_delivered_throughput{engine="kernel"} 0
sim_job_delivered_throughput{engine="reference"} 0
# HELP sim_job_drop_rate Last completed job: failed deliveries per offered message.
# TYPE sim_job_drop_rate gauge
sim_job_drop_rate{engine="kernel"} 0
sim_job_drop_rate{engine="reference"} 0
# HELP sim_job_max_queue_depth Last completed job: peak network-wide send-queue occupancy.
# TYPE sim_job_max_queue_depth gauge
sim_job_max_queue_depth{engine="kernel"} 0
sim_job_max_queue_depth{engine="reference"} 0
# HELP sim_job_retry_rate Last completed job: retries per offered message.
# TYPE sim_job_retry_rate gauge
sim_job_retry_rate{engine="kernel"} 0
sim_job_retry_rate{engine="reference"} 0
# HELP sim_kernel_arenas Delay-class link arenas in the most recently compiled kernel plane.
# TYPE sim_kernel_arenas gauge
sim_kernel_arenas 0
# HELP sim_kernel_links Arena-resident links in the most recently compiled kernel plane.
# TYPE sim_kernel_links gauge
sim_kernel_links 0
# HELP sim_kernel_units Evaluation units in the most recently compiled kernel plane.
# TYPE sim_kernel_units gauge
sim_kernel_units 0
# HELP sim_messages_delivered_total Messages delivered and verified across all executed jobs (telemetry bridge).
# TYPE sim_messages_delivered_total counter
sim_messages_delivered_total 0
# HELP sim_messages_failed_total Messages that exhausted their retry budget across all executed jobs (telemetry bridge).
# TYPE sim_messages_failed_total counter
sim_messages_failed_total 0
# HELP sim_messages_retried_total Message retries across all executed jobs (telemetry bridge).
# TYPE sim_messages_retried_total counter
sim_messages_retried_total 0
# HELP sim_step_ns Mean wall nanoseconds per simulated cycle over the last sampling window; last-writer-wins across concurrent jobs.
# TYPE sim_step_ns gauge
sim_step_ns 0
`

// TestMetricsExpositionGolden scrapes a fresh server and compares the
// exposition byte-for-byte, then checks the scrape's own request is
// visible to the next scrape (the route/code counter increments after
// the handler runs, so a scrape never observes itself).
func TestMetricsExpositionGolden(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, CacheBytes: 1 << 20})
	hs := httptestServer(t, s)
	resp, err := http.Get(hs + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("content type %q, want %q", ct, metrics.ContentType)
	}
	body := string(readBody(t, resp))
	if body != metricsGolden {
		t.Fatalf("exposition drifted from golden.\n--- got ---\n%s--- end ---", body)
	}

	resp2, err := http.Get(hs + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2 := string(readBody(t, resp2))
	if !strings.Contains(body2, `serve_http_requests_total{code="200",route="GET /v1/metrics"} 1`) {
		t.Fatalf("second scrape does not count the first:\n%s", body2)
	}
}

// TestReadyz pins the readiness probe: ready when serving with queue
// headroom, 503 when the queue is saturated (the next submission would
// 429), 503 while draining. Liveness (/v1/healthz) stays 200 throughout
// — TestHealthz covers that side.
func TestReadyz(t *testing.T) {
	s := New(Config{Workers: 0, QueueDepth: 1})
	hs := httptestServer(t, s)
	get := func() (int, readyzPayload) {
		t.Helper()
		resp, err := http.Get(hs + "/v1/readyz")
		if err != nil {
			t.Fatal(err)
		}
		var p readyzPayload
		if err := json.Unmarshal(readBody(t, resp), &p); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, p
	}

	if code, p := get(); code != http.StatusOK || !p.Ready {
		t.Fatalf("fresh server: readyz %d ready=%v", code, p.Ready)
	}

	// Saturate the one-deep queue (no workers drain it).
	resp := submit(t, hs, quickSpec(t, 3), "")
	readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if code, p := get(); code != http.StatusServiceUnavailable || p.Ready || p.Queued != 1 {
		t.Fatalf("saturated queue: readyz %d %+v", code, p)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if code, p := get(); code != http.StatusServiceUnavailable || !p.Draining {
		t.Fatalf("draining: readyz %d %+v", code, p)
	}
}

// TestSSEDropAccounting drives the hub's slow-subscriber path directly:
// every dropped frame increments the counter, the first drop on a
// connection logs exactly once, and the subscriber gauge tracks
// subscribe/cancel/close.
func TestSSEDropAccounting(t *testing.T) {
	r := metrics.NewRegistry()
	obs := jobObs{
		subscribers: r.Gauge("subs", ""),
		dropped:     r.Counter("dropped", ""),
	}
	var logBuf bytes.Buffer
	obs.log = slog.New(slog.NewTextHandler(&logBuf, nil))
	h := newHub("job-abc", obs)

	_, live, cancel := h.subscribe()
	if live == nil || obs.subscribers.Value() != 1 {
		t.Fatalf("after subscribe: live=%v subs=%v", live, obs.subscribers.Value())
	}

	const overflow = 50
	for i := 0; i < subBuffer+overflow; i++ {
		h.publish(streamEvent{name: "gauge", data: []byte("{}")}, false)
	}
	if got := obs.dropped.Value(); got != overflow {
		t.Fatalf("dropped counter %d, want %d", got, overflow)
	}
	logs := logBuf.String()
	if n := strings.Count(logs, "sse_slow_subscriber"); n != 1 {
		t.Fatalf("slow-subscriber warning logged %d times, want exactly 1:\n%s", n, logs)
	}
	if !strings.Contains(logs, "job-abc") {
		t.Fatalf("warning does not carry the job ID:\n%s", logs)
	}

	cancel()
	if obs.subscribers.Value() != 0 {
		t.Fatalf("after cancel: subs=%v", obs.subscribers.Value())
	}
	cancel() // double-cancel must not go negative
	if obs.subscribers.Value() != 0 {
		t.Fatalf("after double cancel: subs=%v", obs.subscribers.Value())
	}

	// close() releases subscribers that never canceled.
	_, _, _ = h.subscribe()
	if obs.subscribers.Value() != 1 {
		t.Fatalf("resubscribe: subs=%v", obs.subscribers.Value())
	}
	h.close()
	if obs.subscribers.Value() != 0 {
		t.Fatalf("after close: subs=%v", obs.subscribers.Value())
	}
}

// TestStructuredLogs runs one job end to end under a JSON logger and
// checks the log stream: a queued/running/terminal line per job state
// (each carrying the job ID) and a request line for the submission.
func TestStructuredLogs(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s := New(Config{Workers: 1, Logger: logger})
	hs := httptestServer(t, s)

	resp := submit(t, hs, quickSpec(t, 4), "?wait=1")
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Job")

	// Join the worker: the terminal job line lands after ?wait=1 returns.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	type line struct {
		Msg   string `json:"msg"`
		Job   string `json:"job"`
		State string `json:"state"`
		Route string `json:"route"`
	}
	var states []string
	requests := 0
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("unparseable log line %q: %v", raw, err)
		}
		switch {
		case l.Msg == "job" && l.Job == id:
			states = append(states, l.State)
		case l.Msg == "request" && l.Route == "POST /v1/jobs" && l.Job == id:
			requests++
		}
	}
	if len(states) != 3 || states[0] != StatusQueued || states[1] != StatusRunning {
		t.Fatalf("job %s state transitions %v, want [queued running <terminal>]", id, states)
	}
	switch states[2] {
	case StatusPassed, StatusFailed, StatusDeadline:
	default:
		t.Fatalf("terminal state %q", states[2])
	}
	if requests != 1 {
		t.Fatalf("%d request lines for the submission, want 1", requests)
	}

	// The run is also visible on /v1/metrics.
	mresp, err := http.Get(hs + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody := string(readBody(t, mresp))
	for _, want := range []string{
		`serve_admission_total{outcome="enqueued"} 1`,
		"serve_jobs_executed_total 1",
		"serve_jobs_inflight 0",
		"serve_queue_wait_seconds_count 1",
	} {
		if !strings.Contains(mbody, want) {
			t.Fatalf("metrics after job missing %q:\n%s", want, mbody)
		}
	}
}
