package nic

// Message is one unit of traffic a source endpoint must deliver reliably.
type Message struct {
	// ID identifies the message in results and traces.
	ID uint64
	// Src and Dest are endpoint numbers.
	Src, Dest int
	// Payload is the request content.
	Payload []byte
	// Created is the cycle the message was offered to the endpoint.
	Created uint64
}

// Result reports the final fate of a message and the telemetry the
// experiments aggregate.
type Result struct {
	Msg Message
	// Delivered is true when the destination acknowledged an intact copy.
	Delivered bool
	// Reply holds the destination responder's reply payload, if any.
	Reply []byte
	// Retries counts connection attempts beyond the first.
	Retries int
	// BlockedFast counts attempts torn down by a BCB (fast reclamation).
	BlockedFast int
	// BlockedDetailed counts attempts rejected with a detailed blocked
	// status reply, along with the blocking stage of the last such reply.
	BlockedDetailed int
	// LastBlockedStage is the stage of the most recent detailed block
	// (-1 if none).
	LastBlockedStage int
	// ChecksumFailures counts attempts that completed with inconsistent
	// checksums (corrupted data).
	ChecksumFailures int
	// Timeouts counts attempts abandoned by the watchdog.
	Timeouts int
	// SuspectStage is the first stage whose reported checksum disagreed
	// with the expected value on the final attempt (-1 if none): the fault
	// localization output.
	SuspectStage int
	// Injected is the cycle the first word of the first attempt entered
	// the network; Done is the cycle the acknowledgment (final TURN)
	// arrived. Done-Injected is the paper's injection-to-acknowledgment
	// latency; Done-Msg.Created additionally includes queueing delay.
	Injected, Done uint64
}
