package analysis

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// A baseline lets a tree with known, not-yet-fixed findings run metrovet
// clean while still failing on anything new. Entries match findings by
// file, rule and message — deliberately NOT by line number, so unrelated
// edits above a finding do not churn the file.
//
// Format, one finding per line (lines starting with # and blank lines are
// ignored):
//
//	<file>: <rule-id>: <message>

// baselineKey is the line-independent identity of a finding.
type baselineKey struct {
	File string
	Rule string
	Msg  string
}

// Baseline is a set of accepted findings.
type Baseline map[baselineKey]bool

// ReadBaseline parses a baseline file.
func ReadBaseline(path string) (Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBaseline(f)
}

func parseBaseline(r io.Reader) (Baseline, error) {
	b := Baseline{}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		file, rest, ok := strings.Cut(line, ": ")
		if !ok {
			return nil, fmt.Errorf("baseline line %d: want \"file: rule: message\", got %q", lineno, line)
		}
		rule, msg, ok := strings.Cut(rest, ": ")
		if !ok {
			return nil, fmt.Errorf("baseline line %d: want \"file: rule: message\", got %q", lineno, line)
		}
		b[baselineKey{strings.TrimSpace(file), strings.TrimSpace(rule), strings.TrimSpace(msg)}] = true
	}
	return b, sc.Err()
}

// Filter removes findings covered by the baseline. Finding filenames must
// already be in the same (module-relative) form the baseline uses.
func (b Baseline) Filter(fs []Finding) []Finding {
	if len(b) == 0 {
		return fs
	}
	out := fs[:0]
	for _, f := range fs {
		if !b[baselineKey{f.Pos.Filename, f.Rule, f.Msg}] {
			out = append(out, f)
		}
	}
	return out
}

// WriteBaseline renders findings in baseline format, deduplicated and
// sorted for stable diffs.
func WriteBaseline(w io.Writer, fs []Finding) error {
	lines := map[string]bool{}
	for _, f := range fs {
		lines[fmt.Sprintf("%s: %s: %s", f.Pos.Filename, f.Rule, f.Msg)] = true
	}
	sorted := make([]string, 0, len(lines))
	for l := range lines {
		sorted = append(sorted, l)
	}
	sort.Strings(sorted)
	if _, err := fmt.Fprintln(w, "# metrovet baseline — accepted findings; remove entries as they are fixed."); err != nil {
		return err
	}
	for _, l := range sorted {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
