package core

// White-box negative tests for CheckInvariants: each case corrupts router
// state directly and asserts the matching invariant clause fires. The
// positive direction — the checker staying silent across millions of
// legitimate cycles — is covered by the netsim every-cycle audits; this
// file proves the auditor itself has teeth.
//
// One clause is deliberately absent: "bp outside the configured
// radix*dilation window" cannot fire while Settings validate, because
// Radix(d) = Outputs/d makes radix*dilation exactly Outputs, and the
// "invalid bp" clause already rejects bp >= Outputs first. It is kept in
// the checker as defense in depth for future dilation schemes where the
// window could be narrower than the physical port count.

import (
	"strings"
	"testing"

	"metro/internal/prng"
	"metro/internal/word"
)

func freshRouter() *Router {
	cfg := Config{
		Inputs: 4, Outputs: 4, Width: 8, MaxDilation: 2,
		HeaderWords: 1, DataPipe: 2, MaxVTD: 0, RandomInputs: 1, ScanPaths: 1,
	}
	return NewRouter("wb", cfg, DefaultSettings(cfg), prng.NewLFSR(5))
}

// connect puts fp into a fully consistent fpForward connection on bp so a
// later corruption isolates exactly one clause.
func connect(r *Router, fp, bp int) {
	r.fwd[fp].state = fpForward
	r.fwd[fp].bp = bp
	r.fwd[fp].pipe = make([]word.Word, r.cfg.DataPipe)
	r.busyBy[bp] = fp
}

func TestCheckInvariantsCatchesEachCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(r *Router)
		want    string // substring of the expected complaint
	}{
		{
			name:    "idle port holding a backward port",
			corrupt: func(r *Router) { r.fwd[0].bp = 3 },
			want:    "holds bp",
		},
		{
			name: "connected port with out-of-range bp",
			corrupt: func(r *Router) {
				r.fwd[1].state = fpForward
				r.fwd[1].bp = r.cfg.Outputs + 3
			},
			want: "invalid bp",
		},
		{
			name: "two ports claiming the same crosspoint",
			corrupt: func(r *Router) {
				connect(r, 0, 2)
				r.fwd[1].state = fpReversed
				r.fwd[1].bp = 2
			},
			want: "claimed by",
		},
		{
			name: "busyBy disagreeing with the owning port",
			corrupt: func(r *Router) {
				connect(r, 0, 2)
				r.busyBy[2] = -1
			},
			want: "busyBy says",
		},
		{
			name: "pipeline depth drifting from DataPipe",
			corrupt: func(r *Router) {
				connect(r, 0, 2)
				r.fwd[0].pipe = r.fwd[0].pipe[:1]
			},
			want: "pipe depth",
		},
		{
			name: "closer flushing an out-of-range bp",
			corrupt: func(r *Router) {
				r.closers = append(r.closers, closer{fp: 0, bp: -3})
			},
			want: "closer with invalid bp",
		},
		{
			name: "closer whose bp is not marked flushing",
			corrupt: func(r *Router) {
				r.closers = append(r.closers, closer{fp: 0, bp: 1})
				// busyBy[1] stays -1 (free) instead of -2 (flushing).
			},
			want: "closer holds bp",
		},
		{
			name: "busyBy naming an owner that claims nothing",
			corrupt: func(r *Router) {
				r.busyBy[3] = 2
			},
			want: "no connected port claims it",
		},
		{
			name: "flushing mark with no closer draining it",
			corrupt: func(r *Router) {
				r.busyBy[1] = -2
			},
			want: "marked flushing with no closer",
		},
		{
			name: "busyBy holding an undefined marker",
			corrupt: func(r *Router) {
				r.busyBy[0] = -7
			},
			want: "invalid marker",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := freshRouter()
			if err := r.CheckInvariants(); err != nil {
				t.Fatalf("fresh router must be consistent: %v", err)
			}
			tc.corrupt(r)
			err := r.CheckInvariants()
			if err == nil {
				t.Fatalf("corruption went undetected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("wrong clause fired: got %q, want it to mention %q",
					err, tc.want)
			}
		})
	}
}
