package fault

import (
	"testing"

	"metro/internal/netsim"
	"metro/internal/topo"
)

func build(t *testing.T, mutate func(*netsim.Params)) *netsim.Network {
	t.Helper()
	p := netsim.Params{
		Spec:        topo.Figure1(),
		Width:       8,
		DataPipe:    1,
		LinkDelay:   1,
		FastReclaim: true,
		Seed:        3,
		RetryLimit:  300,
	}
	if mutate != nil {
		mutate(&p)
	}
	n, err := netsim.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func sendAllPairs(n *netsim.Network, skip func(src, dest int) bool) int {
	count := 0
	for src := 0; src < n.Params.Spec.Endpoints; src++ {
		for dest := 0; dest < n.Params.Spec.Endpoints; dest++ {
			if src == dest || (skip != nil && skip(src, dest)) {
				continue
			}
			n.Send(src, dest, []byte{byte(src), byte(dest)})
			count++
		}
	}
	return count
}

func TestDeliveryWithStaticRouterLoss(t *testing.T) {
	// Kill one router in each dilated stage before any traffic: the
	// multipath property plus stochastic retry must still deliver all
	// messages.
	n := build(t, nil)
	NewInjector(n, Plan{
		{At: 0, Kind: RouterKill, Stage: 0, Index: 2},
		{At: 0, Kind: RouterKill, Stage: 1, Index: 5},
	})
	want := sendAllPairs(n, nil)
	if !n.RunUntilQuiet(500000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	if len(res) != want {
		t.Fatalf("completed %d of %d", len(res), want)
	}
	for _, r := range res {
		if !r.Delivered {
			t.Fatalf("%d->%d undelivered with static faults: %+v", r.Msg.Src, r.Msg.Dest, r)
		}
	}
}

func TestDeliveryWithDynamicLinkFaults(t *testing.T) {
	// Sever inter-stage links while traffic flows: sources detect the
	// damage (timeouts/checksum) and stochastic path selection routes
	// retries around it.
	n := build(t, func(p *netsim.Params) { p.ListenTimeout = 200 })
	NewInjector(n, Plan{
		{At: 100, Kind: LinkKill, Stage: 0, Index: 0, Port: 0},
		{At: 150, Kind: LinkKill, Stage: 1, Index: 3, Port: 1},
		{At: 200, Kind: LinkKill, Stage: 0, Index: 5, Port: 2},
	})
	want := sendAllPairs(n, nil)
	if !n.RunUntilQuiet(1000000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	if len(res) != want {
		t.Fatalf("completed %d of %d", len(res), want)
	}
	undelivered := 0
	for _, r := range res {
		if !r.Delivered {
			undelivered++
		}
	}
	if undelivered > 0 {
		t.Fatalf("%d messages undelivered despite multipath redundancy", undelivered)
	}
}

func TestStuckBitDetectedAndLocalized(t *testing.T) {
	// A stuck payload bit on a stage-1 output link corrupts messages that
	// cross it. The destination NACKs (end-to-end checksum), the source
	// retries, and the per-stage checksum comparison localizes the fault
	// to stage 2 (the stage that received corrupted words).
	n := build(t, func(p *netsim.Params) { p.ListenTimeout = 300 })
	// Corrupt every stage-1 router's outputs so retries cannot avoid the
	// fault region; localization must still point at stage 2.
	var plan Plan
	for j := 0; j < len(n.Routers[1]); j++ {
		for bp := 0; bp < 4; bp++ {
			plan = append(plan, Event{At: 0, Kind: LinkStuckBit, Stage: 1, Index: j, Port: bp, Bit: 0})
		}
	}
	NewInjector(n, plan)
	n.Send(0, 15, []byte{0x00, 0x02, 0x04}) // payload with bit 0 clear
	n.RunUntilQuiet(100000)
	res := n.Results()
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	r := res[0]
	if r.Delivered {
		t.Fatal("corrupted delivery was acknowledged")
	}
	if r.ChecksumFailures == 0 {
		t.Fatal("no checksum failures recorded")
	}
	if r.SuspectStage != 2 {
		t.Fatalf("fault localized to stage %d, want 2", r.SuspectStage)
	}
}

func TestPortDisableMasksFault(t *testing.T) {
	// Disabling the backward ports attached to a faulty link keeps the
	// fault from ever corrupting traffic: messages route around it with
	// no retries caused by corruption.
	n := build(t, nil)
	NewInjector(n, Plan{
		{At: 0, Kind: LinkStuckBit, Stage: 0, Index: 1, Port: 2, Bit: 0},
		{At: 0, Kind: PortDisable, Stage: 0, Index: 1, Port: 2},
	})
	want := sendAllPairs(n, nil)
	if !n.RunUntilQuiet(500000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	if len(res) != want {
		t.Fatalf("completed %d of %d", len(res), want)
	}
	for _, r := range res {
		if !r.Delivered {
			t.Fatalf("undelivered with masked fault: %+v", r)
		}
		if r.ChecksumFailures > 0 {
			t.Fatalf("masked fault still corrupted traffic: %+v", r)
		}
	}
}

func TestRandomPlansDeterministic(t *testing.T) {
	n := build(t, nil)
	a := RandomRouterKills(n, 3, 2, 42, 0, 1000)
	b := RandomRouterKills(n, 3, 2, 42, 0, 1000)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("plan sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different plans")
		}
	}
	c := RandomLinkKills(n, 5, 7, 100, 200)
	if len(c) != 5 {
		t.Fatalf("link plan size %d", len(c))
	}
	for _, e := range c {
		if e.At < 100 || e.At >= 200 {
			t.Fatalf("event outside window: %v", e)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 5, Kind: LinkKill, Stage: 1, Index: 2, Port: 3}
	if e.String() != "@5 link-kill s1r2.p3" {
		t.Fatalf("Event.String = %q", e.String())
	}
	e2 := Event{At: 9, Kind: LinkStuckBit, Stage: -1, Index: 4, Port: 1}
	if e2.String() != "@9 link-stuck-bit ep4.link1" {
		t.Fatalf("Event.String = %q", e2.String())
	}
}
