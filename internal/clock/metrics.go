package clock

import (
	"time"

	"metro/internal/metrics"
)

// defaultMetricsEvery is the sampling period, in cycles, when
// EngineMetrics.Every is zero. Reading the wall clock only on the
// sampling grid keeps the per-cycle cost of enabled metrics to one
// counter increment and one modulo.
const defaultMetricsEvery = 1024

// EngineMetrics wires operational gauges into an Engine. All fields are
// optional (nil gauges discard updates), and every update is a plain
// atomic store — enabling metrics never allocates on the cycle path and
// never feeds values back into the model, so simulation results are
// bit-identical with metrics on or off.
//
// The wall clock is read only on the Every-cycle sampling grid, and only
// to compute throughput gauges; cycle-stamped simulation semantics never
// observe it (the metrovet no-wallclock valves below each carry that
// argument).
type EngineMetrics struct {
	// Every is the sampling period in cycles; 0 means 1024.
	Every uint64

	// CyclesPerSec is the simulated-cycle throughput over the last
	// sampling window.
	CyclesPerSec *metrics.Gauge

	// StepNs is the mean wall time per cycle, in nanoseconds, over the
	// last sampling window.
	StepNs *metrics.Gauge

	// ShardNs receives per-shard (per-partition, on the kernel path)
	// phase wall times in nanoseconds, measured on sampled cycles only:
	// shard s's gauge is Set during eval and Add-ed during commit, so
	// after a sampled cycle it holds that shard's total step time.
	// Shards beyond len(ShardNs) are not timed. Parallel engines only;
	// the serial engine reports StepNs alone.
	ShardNs []*metrics.Gauge

	// KernelUnits, KernelLinks, and KernelArenas are static-shape gauges
	// for a compiled kernel plane, filled by kernel.(*Compiled).PublishShape
	// at assembly time. The engine itself does not write them.
	KernelUnits  *metrics.Gauge
	KernelLinks  *metrics.Gauge
	KernelArenas *metrics.Gauge
}

// every returns the sampling period with the default applied.
func (m *EngineMetrics) every() uint64 {
	if m.Every == 0 {
		return defaultMetricsEvery
	}
	return m.Every
}

// SetMetrics attaches (or, with nil, detaches) operational gauges.
// Worker pools are rebuilt lazily so the per-shard gauge wiring takes
// effect on the next Step. Sampling state resets: the first window
// completes Every cycles after attachment.
func (e *Engine) SetMetrics(m *EngineMetrics) {
	e.invalidate()
	e.met = m
	e.metN = 0
	e.metLast = time.Time{}
}

// Metrics returns the attached gauge set, or nil.
func (e *Engine) Metrics() *EngineMetrics { return e.met }

// metShardNs returns the per-shard gauge list for pool construction.
func (e *Engine) metShardNs() []*metrics.Gauge {
	if e.met == nil {
		return nil
	}
	return e.met.ShardNs
}

// metTimed reports whether the cycle about to execute lands on the
// sampling grid and per-shard timing is wired, so the phase broadcast
// should carry the timed flag.
func (e *Engine) metTimed() bool {
	return e.met != nil && len(e.met.ShardNs) > 0 && (e.metN+1)%e.met.every() == 0
}

// metTick advances the sampling window after a completed cycle; on
// window boundaries it reads the wall clock and publishes the
// throughput gauges. Called only when metrics are attached.
func (e *Engine) metTick() {
	e.metN++
	every := e.met.every()
	if e.metN%every != 0 {
		return
	}
	now := time.Now() //metrovet:ignore no-wallclock throughput gauges sample wall time on the metrics grid; the value never reaches simulation state
	if !e.metLast.IsZero() {
		if dt := now.Sub(e.metLast); dt > 0 {
			e.met.CyclesPerSec.Set(float64(every) / dt.Seconds())
			e.met.StepNs.Set(float64(dt.Nanoseconds()) / float64(every))
		}
	}
	e.metLast = now
}
