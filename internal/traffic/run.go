package traffic

import (
	"metro/internal/netsim"
	"metro/internal/nic"
	"metro/internal/stats"
)

// RunSpec describes one closed-loop measurement run.
type RunSpec struct {
	// Net configures the network. Any OnResult hook it carries is
	// chained after the driver's own accounting.
	Net netsim.Params
	// Load is the target offered load in (0, 1].
	Load float64
	// MsgBytes is the payload size.
	MsgBytes int
	// Pattern selects destinations; nil means Uniform.
	Pattern Pattern
	// Outstanding is the per-endpoint in-flight bound (default 1).
	Outstanding int
	// WarmupCycles are excluded from measurement.
	WarmupCycles uint64
	// MeasureCycles is the measured interval length.
	MeasureCycles uint64
	// Seed drives the workload.
	Seed int64
}

// Run executes one closed-loop simulation and summarizes it.
func Run(spec RunSpec) (stats.LoadPoint, error) {
	driver := &ClosedLoop{
		Load:        spec.Load,
		MsgBytes:    spec.MsgBytes,
		Pattern:     spec.Pattern,
		Outstanding: spec.Outstanding,
		Seed:        spec.Seed,
		Warmup:      spec.WarmupCycles,
	}
	prev := spec.Net.OnResult
	spec.Net.OnResult = func(r nic.Result) {
		driver.OnResult(r)
		if prev != nil {
			prev(r)
		}
	}
	n, err := netsim.Build(spec.Net)
	if err != nil {
		return stats.LoadPoint{}, err
	}
	defer n.Close() // release parallel-engine workers between sweep points
	driver.Bind(n)
	n.Run(spec.WarmupCycles + spec.MeasureCycles)
	return driver.Point(), nil
}

// Sweep runs the spec across a series of offered loads, producing a
// load-latency curve (the paper's Figure 3).
func Sweep(spec RunSpec, loads []float64) ([]stats.LoadPoint, error) {
	points := make([]stats.LoadPoint, 0, len(loads))
	for _, l := range loads {
		spec.Load = l
		p, err := Run(spec)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}
