package analysis

import "testing"

const clockedFixture = `package core

// Router is a clocked component: it has Eval/Commit.
type Router struct {
	state  int
	queue  []int
	lookup map[int]int
}

func (r *Router) Eval(cycle uint64)   { r.step() }
func (r *Router) Commit(cycle uint64) {}

// step is in-cycle: reachable from Eval.
func (r *Router) step() { r.state++ }

// Drain is exported, mutating, and out-of-cycle: finding (line 17).
func (r *Router) Drain() {
	r.queue = r.queue[:0]
	delete(r.lookup, 0)
}

// Poke mutates only via an out-of-cycle helper: finding (line 23).
func (r *Router) Poke() { r.reset() }

func (r *Router) reset() { r.state = 0 }

// State is a pure read: no finding.
func (r *Router) State() int { return r.state }

// Shadow rebinds a local named like the receiver: no receiver mutation.
func (r *Router) Shadow() int {
	s := 0
	{
		r := Router{}
		r.state = 9
		s = r.state
	}
	return s
}

// Configure is a deliberate entry point: annotated, no finding.
//
//metrovet:mutator scan-driven reconfiguration between cycles
func (r *Router) Configure(v int) { r.state = v }

// helper is unexported: not part of the enforced API surface.
func (r *Router) helper() { r.state += 2 }

// plain has no Eval/Commit: not a clocked type, nothing enforced.
type plain struct{ n int }

func (p *plain) Bump() { p.n++ }
`

func TestClockedMutationFiresAndRespectsCyclePath(t *testing.T) {
	got := runRule(t, ClockedMutation(), "metro/internal/core", map[string]string{
		"a.go": clockedFixture,
	})
	wantFindings(t, got, "clocked-mutation", [2]any{"a.go", 17}, [2]any{"a.go", 23})
}

func TestClockedMutationEngineRoots(t *testing.T) {
	// Engine-style wrappers expose Run/Step instead of Eval/Commit; state
	// they mutate from those roots is in-cycle by definition.
	src := map[string]string{
		"a.go": `package netsim

type Network struct{ cycle uint64 }

func (n *Network) Step()          { n.cycle++ }
func (n *Network) Run(c uint64)   { for i := uint64(0); i < c; i++ { n.Step() } }
func (n *Network) Cycle() uint64  { return n.cycle }
`,
	}
	if got := runRule(t, ClockedMutation(), "metro/internal/netsim", src); len(got) != 0 {
		t.Fatalf("Run/Step roots are the cycle path, got %v", got)
	}
}

func TestClockedMutationSilentOutsideScope(t *testing.T) {
	src := map[string]string{
		"a.go": `package scan

type TAP struct{ state int }

func (t *TAP) Eval(cycle uint64)   {}
func (t *TAP) Commit(cycle uint64) {}
func (t *TAP) Force(v int)         { t.state = v }
`,
	}
	if got := runRule(t, ClockedMutation(), "metro/internal/scan", src); len(got) != 0 {
		t.Fatalf("scan is not a cycle-state package, got %v", got)
	}
}
