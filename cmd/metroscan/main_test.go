package main_test

import (
	"testing"

	"metro/internal/clitest"
)

// TestGoldenLocalization pins the default scan-based fault-localization
// narrative end to end: inject, localize to a stage, isolate the faulty
// port pairs, mask, and verify. The suspect listing is sorted before
// printing, so the whole transcript is deterministic.
func TestGoldenLocalization(t *testing.T) {
	clitest.Golden(t, "localize", "metroscan")
}
