package main_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metro/internal/clitest"
	"metro/internal/metrofuzz"
)

// scrapeMetrics fetches /v1/metrics and returns every sample as
// "name" or `name{labels}` → value.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	m := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable metric line %q: %v", line, err)
		}
		m[line[:i]] = v
	}
	return m
}

// result mirrors serve.Result's wire shape (decoded, not imported, so
// this test exercises the JSON contract a real client sees).
type result struct {
	ID      string `json:"id"`
	Spec    string `json:"spec"`
	Status  string `json:"status"`
	Cycles  uint64 `json:"cycles"`
	Summary string `json:"summary"`
}

func postSpec(t *testing.T, base, spec, query string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs"+query, "text/plain", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestMetroserveEndToEnd is the tentpole's proof: a real metroserve
// subprocess on an ephemeral port, driven over HTTP. It asserts the
// cache miss/hit cycle with byte-identical bodies, SSE progress
// streaming, a summary byte-identical to the metrofuzz CLI's replay of
// the same spec, and a clean SIGTERM drain (the harness cleanup fails
// the test if the daemon exits non-zero).
func TestMetroserveEndToEnd(t *testing.T) {
	srv := clitest.StartServer(t, "-workers", "2", "-progress", "64")
	spec := metrofuzz.EncodeSpec(metrofuzz.Generate(1))

	// First submission: a miss that runs the simulation.
	miss, missBody := postSpec(t, srv.URL, spec, "?wait=1")
	if miss.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d; body: %s", miss.StatusCode, missBody)
	}
	if got := miss.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first run X-Cache %q, want miss", got)
	}
	var res result
	if err := json.Unmarshal(missBody, &res); err != nil {
		t.Fatalf("result not JSON: %v; body: %s", err, missBody)
	}
	if res.Status != "passed" {
		t.Fatalf("status %q, want passed; body: %s", res.Status, missBody)
	}
	if res.Spec != spec {
		t.Fatalf("canonical spec drifted: %q vs %q", res.Spec, spec)
	}

	// Resubmission: byte-identical from the cache.
	hit, hitBody := postSpec(t, srv.URL, spec, "?wait=1")
	if got := hit.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("resubmission X-Cache %q, want hit", got)
	}
	if !bytes.Equal(missBody, hitBody) {
		t.Fatalf("cache hit not byte-identical:\nmiss: %s\nhit:  %s", missBody, hitBody)
	}

	// The stored summary is byte-identical to the CLI replaying the same
	// spec — the service and `metrofuzz -replay` are one implementation.
	cli := clitest.Run(t, "metrofuzz", "-replay", spec, "-shrink=false")
	if res.Summary != string(cli) {
		t.Fatalf("server summary diverged from CLI replay:\nserver: %q\ncli:    %q", res.Summary, cli)
	}

	// The SSE stream replays progress and terminates with the result.
	events, err := http.Get(srv.URL + "/v1/jobs/" + res.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()
	progress, done := 0, false
	sc := bufio.NewScanner(events.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		if v, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			event = v
		} else if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			switch event {
			case "progress":
				progress++
			case "done":
				done = true
				if !bytes.Equal(append([]byte(data), '\n'), missBody) {
					t.Fatalf("done event differs from served result:\n%s\n%s", data, missBody)
				}
			}
		}
		if done {
			break
		}
	}
	if progress == 0 || !done {
		t.Fatalf("event stream: %d progress frames, done=%v", progress, done)
	}

	// Stats confirm the hit was served without execution.
	statsResp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	statsBody, _ := io.ReadAll(statsResp.Body)
	statsResp.Body.Close()
	var stats struct {
		Counters struct {
			Executed    uint64 `json:"executed"`
			CacheServed uint64 `json:"cacheServed"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatalf("stats: %v; body: %s", err, statsBody)
	}
	if stats.Counters.Executed != 1 || stats.Counters.CacheServed != 1 {
		t.Fatalf("counters %+v, want executed=1 cacheServed=1", stats.Counters)
	}
}

// TestMetroserveErrorStatuses pins the subprocess's error contract: the
// strict decoder's rejections surface as 400s over the wire.
func TestMetroserveErrorStatuses(t *testing.T) {
	srv := clitest.StartServer(t, "-workers", "1")
	for _, tc := range []struct {
		name, spec string
		status     int
	}{
		{"trailing garbage", "mf1;topo=fig1;w=8 junk", http.StatusBadRequest},
		{"unknown version", "mf2;topo=fig1", http.StatusBadRequest},
		{"empty", "", http.StatusBadRequest},
	} {
		resp, body := postSpec(t, srv.URL, tc.spec, "")
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d; body: %s", tc.name, resp.StatusCode, tc.status, body)
		}
	}
}

// TestMetroserveObservability drives the operational surface of a real
// subprocess end to end: JSON structured logs on stderr, the
// /v1/metrics exposition reflecting an executed job, the
// liveness/readiness split, and pprof answering on the opt-in debug
// listener (and only there).
func TestMetroserveObservability(t *testing.T) {
	srv := clitest.StartServer(t, "-workers", "1", "-log-format", "json", "-debug-addr", "127.0.0.1:0")
	spec := metrofuzz.EncodeSpec(metrofuzz.Generate(7))
	resp, body := postSpec(t, srv.URL, spec, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d; body: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Job")

	mm := scrapeMetrics(t, srv.URL)
	if mm["serve_jobs_executed_total"] != 1 {
		t.Fatalf("serve_jobs_executed_total = %v, want 1", mm["serve_jobs_executed_total"])
	}
	if mm[`serve_admission_total{outcome="enqueued"}`] != 1 {
		t.Fatalf("enqueued admission = %v, want 1", mm[`serve_admission_total{outcome="enqueued"}`])
	}

	for _, probe := range []struct {
		path string
		want int
	}{{"/v1/healthz", http.StatusOK}, {"/v1/readyz", http.StatusOK}} {
		presp, err := http.Get(srv.URL + probe.path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, presp.Body)
		presp.Body.Close()
		if presp.StatusCode != probe.want {
			t.Fatalf("%s: status %d, want %d", probe.path, presp.StatusCode, probe.want)
		}
	}

	// pprof is absent from the serving port...
	notHere, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, notHere.Body)
	notHere.Body.Close()
	if notHere.StatusCode == http.StatusOK {
		t.Fatal("pprof answered on the serving port; it must live on -debug-addr only")
	}
	// ...and present on the debug listener, whose address the daemon
	// reports right after the main listen line.
	var debugAddr string
	deadline := time.Now().Add(10 * time.Second)
	for debugAddr == "" {
		for _, line := range strings.Split(srv.Output(), "\n") {
			if a, ok := strings.CutPrefix(line, "metroserve debug listening on "); ok {
				debugAddr = a
			}
		}
		if debugAddr == "" {
			if time.Now().After(deadline) {
				t.Fatalf("daemon never reported the debug address; output:\n%s", srv.Output())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	dresp, err := http.Get("http://" + debugAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	cmdline, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || !strings.Contains(string(cmdline), "metroserve") {
		t.Fatalf("debug pprof: status %d, body %q", dresp.StatusCode, cmdline)
	}

	// Structured logs: the stderr stream carries a JSON job record for
	// this run's terminal state. The line lands just after ?wait=1
	// returns, so poll briefly.
	deadline = time.Now().Add(10 * time.Second)
	for {
		found := false
		for _, line := range strings.Split(srv.Output(), "\n") {
			if !strings.HasPrefix(line, "{") {
				continue
			}
			var rec struct {
				Msg   string `json:"msg"`
				Job   string `json:"job"`
				State string `json:"state"`
			}
			if json.Unmarshal([]byte(line), &rec) != nil {
				continue
			}
			if rec.Msg == "job" && rec.Job == id && rec.State == "passed" {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no JSON job log for %s; output:\n%s", id, srv.Output())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMetroserveBadLogFormat pins the flag-validation exit code.
func TestMetroserveBadLogFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	out := clitest.ExitCode(t, 2, "metroserve", "-log-format", "bogus")
	if !strings.Contains(string(out), "unknown -log-format") {
		t.Fatalf("exit-2 message: %q", out)
	}
}

// TestMetroserveSoak hammers a metroserve subprocess with concurrent
// submissions for 60 seconds and then proves zero dropped-but-acked
// jobs: every submission the server acknowledged (200 or 202) must be
// resolvable to a terminal result afterwards. Rejections (429) are
// legal under load; silent loss is not. Gated behind METROSERVE_SOAK=1
// so `go test ./...` stays fast; CI's soak job sets it.
func TestMetroserveSoak(t *testing.T) {
	if os.Getenv("METROSERVE_SOAK") != "1" {
		t.Skip("set METROSERVE_SOAK=1 to run the 60s soak")
	}
	srv := clitest.StartServer(t, "-workers", "4", "-queue", "32", "-job-timeout", "30s")

	const clients = 8
	deadline := time.Now().Add(60 * time.Second)
	var (
		mu       sync.Mutex
		acked    = map[string]bool{}
		accepted atomic.Uint64
		rejected atomic.Uint64
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			client := &http.Client{Timeout: 90 * time.Second}
			for time.Now().Before(deadline) {
				// A small seed pool makes cache hits and coalescing
				// common; occasional fresh seeds keep the workers busy.
				seed := int64(rng.Intn(6))
				if rng.Intn(4) == 0 {
					seed = rng.Int63n(1 << 20)
				}
				spec := metrofuzz.EncodeSpec(metrofuzz.Generate(seed))
				resp, err := client.Post(srv.URL+"/v1/jobs", "text/plain", strings.NewReader(spec))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				id := resp.Header.Get("X-Job")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusAccepted:
					accepted.Add(1)
					mu.Lock()
					acked[id] = true
					mu.Unlock()
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					t.Errorf("client %d: unexpected status %d", c, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	t.Logf("soak: %d acked, %d rejected, %d distinct jobs", accepted.Load(), rejected.Load(), len(acked))
	if accepted.Load() == 0 {
		t.Fatal("soak made no accepted submissions")
	}

	// Every acked job must resolve: poll until terminal or timeout.
	settle := time.Now().Add(2 * time.Minute)
	for id := range acked {
		for {
			resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatalf("polling %s: %v", id, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				t.Fatalf("acked job %s was dropped (404): %s", id, body)
			}
			var st struct {
				Status string `json:"status"`
			}
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatalf("job %s: bad body %q: %v", id, body, err)
			}
			if st.Status == "passed" || st.Status == "failed" || st.Status == "deadline" {
				break
			}
			if time.Now().After(settle) {
				t.Fatalf("acked job %s never settled (still %q)", id, st.Status)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// The metrics plane must agree that nothing was dropped: every job
	// admitted to the queue was executed, and with all acked jobs
	// settled the queue and workers are empty.
	mm := scrapeMetrics(t, srv.URL)
	enq, exec := mm[`serve_admission_total{outcome="enqueued"}`], mm["serve_jobs_executed_total"]
	if enq != exec || exec == 0 {
		t.Errorf("metrics disagree on drops: enqueued %v, executed %v (want equal and nonzero)", enq, exec)
	}
	if mm["serve_queue_depth"] != 0 || mm["serve_jobs_inflight"] != 0 {
		t.Errorf("metrics after settle: queue_depth %v, inflight %v, want 0/0",
			mm["serve_queue_depth"], mm["serve_jobs_inflight"])
	}
}
