//go:build race

package netsim

// raceEnabled reports that the race detector is active. Zero-allocation
// gates are skipped under -race: the instrumentation inflates allocation
// counts, so the gate would fail for reasons unrelated to the model.
const raceEnabled = true
