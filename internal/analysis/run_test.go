package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// scaffoldModule writes a small on-disk module for RunTree tests. The
// component's Eval allocates and writes package-level state, so several
// rules fire; the util package stays clean so per-package cache hits are
// observable on partial rebuilds.
func scaffoldModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module metro\n\ngo 1.22\n")
	write("internal/comp/comp.go", `package comp

var total int

type C struct{ buf []int }

func (c *C) Eval(cycle uint64) {
	c.buf = make([]int, 4)
	total++
}

func (c *C) Commit(cycle uint64) {}
`)
	write("internal/util/util.go", `package util

// Add is pure and boring on purpose.
func Add(a, b int) int { return a + b }
`)
	return root
}

func TestRunTreeCacheWarmEqualsCold(t *testing.T) {
	root := scaffoldModule(t)
	cacheDir := filepath.Join(root, ".cache")

	cold, err := RunTree(root, TreeOptions{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if cold.FullHit {
		t.Fatal("first run cannot be a cache hit")
	}
	if len(cold.Findings) == 0 {
		t.Fatal("fixture module should produce findings")
	}
	for _, f := range cold.Findings {
		if filepath.IsAbs(f.Pos.Filename) {
			t.Fatalf("finding path not module-relative: %s", f.Pos.Filename)
		}
	}

	warm, err := RunTree(root, TreeOptions{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FullHit {
		t.Fatal("unchanged tree should be a full cache hit")
	}
	if !reflect.DeepEqual(cold.Findings, warm.Findings) {
		t.Fatalf("warm findings differ from cold:\ncold: %v\nwarm: %v", cold.Findings, warm.Findings)
	}
	if warm.Key != cold.Key {
		t.Errorf("program key changed without edits: %s vs %s", cold.Key, warm.Key)
	}
}

func TestRunTreeCacheInvalidation(t *testing.T) {
	root := scaffoldModule(t)
	cacheDir := filepath.Join(root, ".cache")
	if _, err := RunTree(root, TreeOptions{CacheDir: cacheDir}); err != nil {
		t.Fatal(err)
	}

	// Touch one package: the other package's per-package results should
	// still come from the cache, but the run itself must not be a full hit.
	compPath := filepath.Join(root, "internal", "comp", "comp.go")
	src, err := os.ReadFile(compPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(compPath, append(src, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}

	partial, err := RunTree(root, TreeOptions{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if partial.FullHit {
		t.Fatal("edited tree must not be a full cache hit")
	}
	if partial.PkgHits == 0 {
		t.Error("untouched packages should hit the per-package cache")
	}
	if partial.PkgHits >= partial.Packages {
		t.Error("edited package must miss the per-package cache")
	}

	// And the result after the edit equals an uncached run (the cache can
	// never change what the analyzers report).
	bare, err := RunTree(root, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(partial.Findings, bare.Findings) {
		t.Fatalf("cached run differs from uncached:\ncached: %v\nbare: %v", partial.Findings, bare.Findings)
	}
}

func TestRunTreeCorruptCacheIsIgnored(t *testing.T) {
	root := scaffoldModule(t)
	cacheDir := filepath.Join(root, ".cache")
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cacheDir, cacheFileName), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := RunTree(root, TreeOptions{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if res.FullHit {
		t.Fatal("corrupt cache must not produce a hit")
	}
	if len(res.Findings) == 0 {
		t.Fatal("analysis should still run with a corrupt cache")
	}
}
