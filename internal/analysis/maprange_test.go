package analysis

import "testing"

func TestMapRangeFires(t *testing.T) {
	got := runRule(t, MapRange(), "metro/internal/core", map[string]string{
		"a.go": `package core

type state struct{ owners map[int]bool }

func (s *state) drain() []int {
	var out []int
	for fp := range s.owners { // line 7: map field
		out = append(out, fp)
	}
	for k := range map[string]int{"a": 1} { // line 10: map literal
		_ = k
	}
	return out
}

func overSlice(xs []int) int {
	n := 0
	for _, x := range xs { // slices range deterministically: no finding
		n += x
	}
	return n
}
`,
	})
	wantFindings(t, got, "ordered-map-iteration", [2]any{"a.go", 7}, [2]any{"a.go", 10})
}

func TestMapRangeOrderedAnnotation(t *testing.T) {
	src := map[string]string{
		"a.go": `package netsim

func maxKey(m map[int]int) int {
	best := -1
	//metrovet:ordered max over keys is order-independent
	for k := range m {
		if k > best {
			best = k
		}
	}
	return best
}

func sameLine(m map[int]bool) int {
	n := 0
	for range m { //metrovet:ordered pure counting
		n++
	}
	return n
}
`,
	}
	if got := runRule(t, MapRange(), "metro/internal/netsim", src); len(got) != 0 {
		t.Fatalf("annotated loops must be silent, got %v", got)
	}
}

func TestMapRangeAnnotationNeedsReason(t *testing.T) {
	got := runRule(t, MapRange(), "metro/internal/cascade", map[string]string{
		"a.go": `package cascade

func count(m map[int]bool) int {
	n := 0
	//metrovet:ordered
	for range m { // line 6: directive without justification is void
		n++
	}
	return n
}
`,
	})
	wantFindings(t, got, "ordered-map-iteration", [2]any{"a.go", 6})
}

func TestMapRangeScopedToCycleStatePackages(t *testing.T) {
	src := map[string]string{
		"a.go": `package stats

func sum(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t
}
`,
	}
	if got := runRule(t, MapRange(), "metro/internal/stats", src); len(got) != 0 {
		t.Fatalf("stats is not a cycle-state package, got %v", got)
	}
}

func TestMapRangeCoversTestFiles(t *testing.T) {
	got := runRule(t, MapRange(), "metro/internal/nic", map[string]string{
		"a_test.go": `package nic

func tableWalk() int {
	cases := map[string]int{"a": 1}
	n := 0
	for _, v := range cases { // line 6: test iteration order leaks into failures
		n += v
	}
	return n
}
`,
	})
	wantFindings(t, got, "ordered-map-iteration", [2]any{"a_test.go", 6})
}
