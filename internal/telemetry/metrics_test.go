package telemetry

import (
	"testing"

	"metro/internal/metrics"
)

// TestMetricsSinkTallies feeds a synthetic event stream through the
// bridge and checks both the per-run tallies and the live counters.
func TestMetricsSinkTallies(t *testing.T) {
	r := metrics.NewRegistry()
	s := &MetricsSink{
		Delivered: r.Counter("delivered_total", ""),
		Retried:   r.Counter("retried_total", ""),
		Failed:    r.Counter("failed_total", ""),
	}
	s.Sink([]Event{
		{Kind: EvMsgQueued},
		{Kind: EvMsgQueued},
		{Kind: EvMsgAttempt, A: 1},
		{Kind: EvMsgRetried, A: 1},
		{Kind: EvGaugeQueueDepth, A: 7, B: 3},
	})
	s.Sink([]Event{
		{Kind: EvGaugeQueueDepth, A: 4, B: 4},
		{Kind: EvMsgDelivered, A: 1},
		{Kind: EvMsgFailed, A: 5},
		{Kind: EvGaugeQueueDepth, A: 1, B: 1},
	})

	got := s.Stats()
	want := SinkStats{Offered: 2, Delivered: 1, Retried: 1, Failed: 1, MaxQueueDepth: 7, MaxSingleQueue: 4}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	if s.Delivered.Value() != 1 || s.Retried.Value() != 1 || s.Failed.Value() != 1 {
		t.Fatalf("live counters = %d/%d/%d, want 1/1/1",
			s.Delivered.Value(), s.Retried.Value(), s.Failed.Value())
	}
}

// TestMetricsSinkNilCounters verifies the bridge works with no live
// counters wired — tallies only.
func TestMetricsSinkNilCounters(t *testing.T) {
	s := &MetricsSink{}
	s.Sink([]Event{{Kind: EvMsgDelivered}, {Kind: EvMsgDelivered}})
	if s.Stats().Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", s.Stats().Delivered)
	}
}

// TestMetricsSinkAsRecorderTap installs the bridge as a Recorder
// streaming tap and drives events through a Buf + Flush, the exact
// path netsim uses.
func TestMetricsSinkAsRecorderTap(t *testing.T) {
	rec := New(Options{Capacity: 64})
	s := &MetricsSink{}
	rec.SetSink(s.Sink)
	buf := rec.NewBuf()
	buf.Emit(Event{Cycle: 1, Kind: EvMsgQueued})
	buf.Emit(Event{Cycle: 2, Kind: EvMsgDelivered, A: 0})
	rec.Flush()
	got := s.Stats()
	if got.Offered != 1 || got.Delivered != 1 {
		t.Fatalf("stats = %+v, want offered 1 delivered 1", got)
	}
}
