package nic

import "testing"

// TestSenderStateString pins the mnemonic for every sender state.
func TestSenderStateString(t *testing.T) {
	want := []struct {
		s    sState
		name string
	}{
		{sIdle, "IDLE"},
		{sSending, "SENDING"},
		{sListening, "LISTENING"},
		{sDropping, "DROPPING"},
		{sCooldown, "COOLDOWN"},
	}
	if len(want) != len(sStateNames) {
		t.Fatalf("test covers %d states, sStateNames has %d", len(want), len(sStateNames))
	}
	for _, tc := range want {
		if got := tc.s.String(); got != tc.name {
			t.Errorf("sState(%d).String() = %q, want %q", uint8(tc.s), got, tc.name)
		}
	}
	if got := sState(200).String(); got != "sState(200)" {
		t.Errorf("out-of-range String() = %q, want %q", got, "sState(200)")
	}
}

// TestReceiverStateString pins the mnemonic for every receiver state.
func TestReceiverStateString(t *testing.T) {
	want := []struct {
		s    rState
		name string
	}{
		{rIdle, "IDLE"},
		{rAssemble, "ASSEMBLE"},
		{rReply, "REPLY"},
		{rClosing, "CLOSING"},
	}
	if len(want) != len(rStateNames) {
		t.Fatalf("test covers %d states, rStateNames has %d", len(want), len(rStateNames))
	}
	for _, tc := range want {
		if got := tc.s.String(); got != tc.name {
			t.Errorf("rState(%d).String() = %q, want %q", uint8(tc.s), got, tc.name)
		}
	}
	if got := rState(200).String(); got != "rState(200)" {
		t.Errorf("out-of-range String() = %q, want %q", got, "rState(200)")
	}
}
