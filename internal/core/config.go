// Package core implements the METRO router: a dilated crossbar routing
// component supporting half-duplex bidirectional, pipelined,
// circuit-switched connections (paper, Sections 3-5).
//
// Each router is self-routing and handles dynamic message traffic. The
// principal mechanisms modeled at clock-cycle granularity are:
//
//   - stochastic path selection: a connection requesting a logical output
//     direction is switched to a randomly chosen available backward port in
//     that direction; if none is available the connection is blocked;
//   - connection reversal (TURN): an open connection may reverse its
//     transmission direction any number of times; at each reversal the
//     router injects STATUS and CHECKSUM words into the new stream,
//     providing the information sources use for error localization;
//   - fast path reclamation: a blocked connection either holds the path for
//     a detailed reply (status + checksum at the blocking router) or is
//     torn down immediately by a backward control bit (BCB), selectable per
//     forward port and reconfigurable during operation;
//   - pipelined connection setup (hw header words consumed per router) and
//     data pipelining (dp pipeline stages through the router);
//   - configurable dilation: the effective dilation may be set to any power
//     of two up to the implementation maximum;
//   - per-port enables for scan-driven fault masking.
package core

import (
	"fmt"
	"math/bits"
)

// Config holds the architectural parameters of a METRO router
// implementation, following Table 1 of the paper. These are fixed when the
// component is "fabricated"; run-time options live in Settings.
type Config struct {
	// Inputs is i, the number of forward ports (a power of two).
	Inputs int
	// Outputs is o, the number of backward ports (a power of two,
	// o >= MaxDilation).
	Outputs int
	// Width is w, the bit width of the data channel (w >= log2(o)).
	Width int
	// MaxDilation is max_d, the largest configurable dilation (a power of
	// two, <= Outputs).
	MaxDilation int
	// HeaderWords is hw, the number of header words consumed per router.
	// hw == 0 selects in-word bit stripping (RN1 style); hw >= 1 selects
	// pipelined connection setup consuming hw words from the stream head.
	HeaderWords int
	// DataPipe is dp, the number of data pipeline stages inside the router
	// (>= 1).
	DataPipe int
	// MaxVTD is max_vtd, the largest per-port variable turn delay the
	// implementation supports (>= 0).
	MaxVTD int
	// RandomInputs is ri, the number of random input bit streams (>= 1).
	RandomInputs int
	// ScanPaths is sp, the number of scan paths / TAPs (>= 1).
	ScanPaths int
}

// Validate checks the Table 1 parameter constraints.
func (c Config) Validate() error {
	switch {
	case c.Inputs < 1 || !isPow2(c.Inputs):
		return fmt.Errorf("core: Inputs (i) must be a power of two, got %d", c.Inputs)
	case c.Outputs < 1 || !isPow2(c.Outputs):
		return fmt.Errorf("core: Outputs (o) must be a power of two, got %d", c.Outputs)
	case c.MaxDilation < 1 || !isPow2(c.MaxDilation):
		return fmt.Errorf("core: MaxDilation (max_d) must be a power of two, got %d", c.MaxDilation)
	case c.MaxDilation > c.Outputs:
		return fmt.Errorf("core: MaxDilation %d exceeds Outputs %d", c.MaxDilation, c.Outputs)
	case c.Width < log2(c.Outputs):
		return fmt.Errorf("core: Width (w) %d < log2(Outputs) = %d", c.Width, log2(c.Outputs))
	case c.Width > 32:
		return fmt.Errorf("core: Width (w) %d exceeds the model's 32-bit payload limit", c.Width)
	case c.HeaderWords < 0:
		return fmt.Errorf("core: HeaderWords (hw) must be >= 0, got %d", c.HeaderWords)
	case c.DataPipe < 1:
		return fmt.Errorf("core: DataPipe (dp) must be >= 1, got %d", c.DataPipe)
	case c.MaxVTD < 0:
		return fmt.Errorf("core: MaxVTD (max_vtd) must be >= 0, got %d", c.MaxVTD)
	case c.RandomInputs < 1:
		return fmt.Errorf("core: RandomInputs (ri) must be >= 1, got %d", c.RandomInputs)
	case c.ScanPaths < 1:
		return fmt.Errorf("core: ScanPaths (sp) must be >= 1, got %d", c.ScanPaths)
	}
	return nil
}

// Radix returns the number of logically distinct output directions when the
// router is configured with dilation d: r = o / d.
func (c Config) Radix(d int) int { return c.Outputs / d }

// DirBits returns the number of routing bits a router consumes per
// connection at dilation d: log2(radix).
func (c Config) DirBits(d int) int { return log2(c.Radix(d)) }

// Settings holds the run-time configurable options of a router, following
// Table 2 of the paper. All options are loadable over the scan interface
// (package scan); port enables and fast reclamation may also be changed
// while the router is in operation.
type Settings struct {
	// Dilation is the configured effective dilation d (a power of two,
	// 1 <= d <= MaxDilation).
	Dilation int
	// ForwardEnabled enables each forward port (len Inputs). A disabled
	// port ignores all traffic and can be isolated for scan testing.
	ForwardEnabled []bool
	// BackwardEnabled enables each backward port (len Outputs). Disabled
	// ports are never allocated.
	BackwardEnabled []bool
	// FastReclaim selects fast path reclamation per forward port
	// (len Inputs). When false the port holds blocked connections for a
	// detailed status reply.
	FastReclaim []bool
	// Swallow selects, per forward port (len Inputs), whether a routing
	// word whose bits are exhausted is removed from the stream. Only
	// relevant when HeaderWords == 0.
	Swallow []bool
	// TurnDelay records the variable turn delay configured for each port
	// (len Inputs+Outputs), each <= MaxVTD. The delay itself is realized
	// by the attached link pipelines; the register exists so the scan
	// interface can read and write the same configuration state the
	// silicon holds.
	TurnDelay []int
	// OffPortDrive selects, per port (len Inputs+Outputs), whether a
	// disabled port actively drives its output pins (used during boundary
	// test of isolated ports).
	OffPortDrive []bool
}

// DefaultSettings returns settings with every port enabled, fast
// reclamation and swallow on, and dilation equal to MaxDilation.
func DefaultSettings(c Config) Settings {
	s := Settings{
		Dilation:        c.MaxDilation,
		ForwardEnabled:  make([]bool, c.Inputs),
		BackwardEnabled: make([]bool, c.Outputs),
		FastReclaim:     make([]bool, c.Inputs),
		Swallow:         make([]bool, c.Inputs),
		TurnDelay:       make([]int, c.Inputs+c.Outputs),
		OffPortDrive:    make([]bool, c.Inputs+c.Outputs),
	}
	for i := range s.ForwardEnabled {
		s.ForwardEnabled[i] = true
		s.FastReclaim[i] = true
		s.Swallow[i] = true
	}
	for i := range s.BackwardEnabled {
		s.BackwardEnabled[i] = true
	}
	return s
}

// Validate checks the settings against the architectural parameters.
func (s Settings) Validate(c Config) error {
	switch {
	case s.Dilation < 1 || !isPow2(s.Dilation):
		return fmt.Errorf("core: Dilation must be a power of two, got %d", s.Dilation)
	case s.Dilation > c.MaxDilation:
		return fmt.Errorf("core: Dilation %d exceeds MaxDilation %d", s.Dilation, c.MaxDilation)
	case len(s.ForwardEnabled) != c.Inputs:
		return fmt.Errorf("core: ForwardEnabled length %d != Inputs %d", len(s.ForwardEnabled), c.Inputs)
	case len(s.BackwardEnabled) != c.Outputs:
		return fmt.Errorf("core: BackwardEnabled length %d != Outputs %d", len(s.BackwardEnabled), c.Outputs)
	case len(s.FastReclaim) != c.Inputs:
		return fmt.Errorf("core: FastReclaim length %d != Inputs %d", len(s.FastReclaim), c.Inputs)
	case len(s.Swallow) != c.Inputs:
		return fmt.Errorf("core: Swallow length %d != Inputs %d", len(s.Swallow), c.Inputs)
	case len(s.TurnDelay) != c.Inputs+c.Outputs:
		return fmt.Errorf("core: TurnDelay length %d != Inputs+Outputs %d", len(s.TurnDelay), c.Inputs+c.Outputs)
	case len(s.OffPortDrive) != c.Inputs+c.Outputs:
		return fmt.Errorf("core: OffPortDrive length %d != Inputs+Outputs %d", len(s.OffPortDrive), c.Inputs+c.Outputs)
	}
	for p, td := range s.TurnDelay {
		if td < 0 || td > c.MaxVTD {
			return fmt.Errorf("core: TurnDelay[%d] = %d outside [0, max_vtd=%d]", p, td, c.MaxVTD)
		}
	}
	return nil
}

// Clone returns a deep copy of the settings.
func (s Settings) Clone() Settings {
	c := s
	c.ForwardEnabled = append([]bool(nil), s.ForwardEnabled...)
	c.BackwardEnabled = append([]bool(nil), s.BackwardEnabled...)
	c.FastReclaim = append([]bool(nil), s.FastReclaim...)
	c.Swallow = append([]bool(nil), s.Swallow...)
	c.TurnDelay = append([]int(nil), s.TurnDelay...)
	c.OffPortDrive = append([]bool(nil), s.OffPortDrive...)
	return c
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
