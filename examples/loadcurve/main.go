// Load-latency curve: a compact version of the paper's Figure 3
// experiment. Randomly distributed 20-byte messages drive the 3-stage,
// radix-4, 64-endpoint network under the processor-stall model (each
// endpoint keeps one message outstanding); the effective latency from
// injection to acknowledgment receipt is reported against offered load,
// rendered as a text plot.
package main

import (
	"fmt"
	"log"
	"strings"

	"metro"
)

func main() {
	spec := metro.RunSpec{
		Net: metro.NetworkParams{
			Spec:        metro.Figure3Topology(),
			Width:       8,
			DataPipe:    1,
			LinkDelay:   1,
			FastReclaim: true,
			Seed:        21,
			RetryLimit:  500,
		},
		MsgBytes:      20,
		Pattern:       metro.UniformTraffic{},
		Outstanding:   1,
		WarmupCycles:  3000,
		MeasureCycles: 12000,
		Seed:          4,
	}
	loads := []float64{0.05, 0.15, 0.30, 0.45, 0.60, 0.75, 0.90}
	points, err := metro.LoadSweep(spec, loads)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("latency vs network loading, 20-byte random traffic (Figure 3 configuration)")
	fmt.Printf("%-8s %-9s %-10s %-10s %-8s\n", "offered", "accepted", "mean lat", "p95 lat", "retries")
	maxLat := 0.0
	for _, p := range points {
		if p.Latency.Mean > maxLat {
			maxLat = p.Latency.Mean
		}
	}
	for _, p := range points {
		bar := strings.Repeat("#", int(p.Latency.Mean/maxLat*40+0.5))
		fmt.Printf("%-8.2f %-9.2f %-10.1f %-10.1f %-8.2f %s\n",
			p.OfferedLoad, p.AcceptedLoad, p.Latency.Mean, p.Latency.P95,
			p.RetriesPerMessage, bar)
	}
	fmt.Printf("unloaded latency %.1f cycles (paper's simulation: 28 cycles); "+
		"latency grows smoothly with load as blocked connections retry\n",
		points[0].Latency.Mean)
}
