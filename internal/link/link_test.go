package link

import (
	"testing"

	"metro/internal/word"
)

func step(l *Link) {
	l.Eval(0)
	l.Commit(0)
}

func TestDelayOne(t *testing.T) {
	l := New("t", 1)
	a, b := l.A(), l.B()
	a.Send(word.MakeData(0x5, 4))
	if !b.Recv().IsEmpty() {
		t.Fatal("word visible before commit")
	}
	step(l)
	got := b.Recv()
	if got.Kind != word.Data || got.Payload != 0x5 {
		t.Fatalf("after 1 cycle, B received %v", got)
	}
	step(l)
	if !b.Recv().IsEmpty() {
		t.Fatal("un-driven link should deliver Empty")
	}
}

func TestDelayN(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5} {
		l := New("t", d)
		a, b := l.A(), l.B()
		a.Send(word.MakeData(1, 4))
		for i := 0; i < d-1; i++ {
			step(l)
			if !b.Recv().IsEmpty() {
				t.Fatalf("delay %d: word arrived early at cycle %d", d, i+1)
			}
		}
		step(l)
		if b.Recv().Kind != word.Data {
			t.Fatalf("delay %d: word did not arrive after %d cycles", d, d)
		}
	}
}

func TestBidirectional(t *testing.T) {
	l := New("t", 2)
	a, b := l.A(), l.B()
	a.Send(word.MakeData(0xA, 4))
	b.Send(word.MakeData(0xB, 4))
	step(l)
	step(l)
	if got := b.Recv(); got.Payload != 0xA {
		t.Fatalf("B received %v", got)
	}
	if got := a.Recv(); got.Payload != 0xB {
		t.Fatalf("A received %v", got)
	}
}

func TestBCBPropagation(t *testing.T) {
	l := New("t", 2)
	a, b := l.A(), l.B()
	b.SendBCB(true)
	if a.RecvBCB() {
		t.Fatal("BCB visible before commit")
	}
	step(l)
	if a.RecvBCB() {
		t.Fatal("BCB arrived early")
	}
	step(l)
	if !a.RecvBCB() {
		t.Fatal("BCB did not arrive after delay")
	}
	step(l)
	if a.RecvBCB() {
		t.Fatal("BCB should deassert when no longer driven")
	}
}

func TestPipelinedStream(t *testing.T) {
	// Words sent on consecutive cycles arrive on consecutive cycles in
	// order — the link is a transparent pipeline.
	l := New("t", 3)
	a, b := l.A(), l.B()
	var got []uint32
	for i := 0; i < 10; i++ {
		a.Send(word.MakeData(uint32(i), 8))
		step(l)
		if w := b.Recv(); !w.IsEmpty() {
			got = append(got, w.Payload)
		}
	}
	// Drain.
	for i := 0; i < 3; i++ {
		step(l)
		if w := b.Recv(); !w.IsEmpty() {
			got = append(got, w.Payload)
		}
	}
	if len(got) != 10 {
		t.Fatalf("received %d words, want 10", len(got))
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("out of order: got[%d] = %d", i, v)
		}
	}
}

func TestKillRevive(t *testing.T) {
	l := New("t", 1)
	a, b := l.A(), l.B()
	a.Send(word.MakeData(1, 4))
	b.SendBCB(true)
	step(l)
	l.Kill()
	if !l.Dead() {
		t.Fatal("Dead() should report true")
	}
	if !b.Recv().IsEmpty() {
		t.Fatal("dead link delivered a word")
	}
	if a.RecvBCB() {
		t.Fatal("dead link delivered BCB")
	}
	l.Revive()
	if l.Dead() {
		t.Fatal("Revive did not clear Dead")
	}
	a.Send(word.MakeData(2, 4))
	step(l)
	if b.Recv().Payload != 2 {
		t.Fatal("revived link did not carry traffic")
	}
}

func TestCorruptor(t *testing.T) {
	l := New("t", 1)
	a, b := l.A(), l.B()
	l.SetCorruptor(func(w word.Word) word.Word {
		w.Payload ^= 0x1
		return w
	}, nil)
	a.Send(word.MakeData(0x4, 4))
	b.Send(word.MakeData(0x4, 4))
	step(l)
	if got := b.Recv(); got.Payload != 0x5 {
		t.Fatalf("A->B corruptor not applied: %v", got)
	}
	if got := a.Recv(); got.Payload != 0x4 {
		t.Fatalf("B->A should be clean: %v", got)
	}
}

func TestCorruptorSkipsEmpty(t *testing.T) {
	l := New("t", 1)
	called := false
	l.SetCorruptor(func(w word.Word) word.Word {
		called = true
		return w
	}, nil)
	step(l)
	_ = l.B().Recv()
	if called {
		t.Fatal("corruptor must not run on Empty slots")
	}
}

func TestNameAndDelayAccessors(t *testing.T) {
	l := New("r0.b2->r5.f1", 4)
	if l.Name() != "r0.b2->r5.f1" {
		t.Fatalf("Name() = %q", l.Name())
	}
	if l.Delay() != 4 {
		t.Fatalf("Delay() = %d", l.Delay())
	}
	if l.A().Link() != l || l.B().Link() != l {
		t.Fatal("End.Link() should return the parent link")
	}
}

func TestZeroDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with delay 0 should panic")
		}
	}()
	New("bad", 0)
}
