package metrofuzz

import (
	"strings"
	"testing"

	"metro/internal/fault"
	"metro/internal/netsim"
	"metro/internal/nic"
	"metro/internal/telemetry"
	"metro/internal/word"
)

// tinyScenario is a fast, fully deterministic 4-endpoint burst used by
// the self-test (mutation) cases: small retry budget so injected bugs
// fail in a few thousand cycles, parallel leg enabled so the
// differential machinery is exercised too.
func tinyScenario() Scenario {
	return Scenario{
		Custom:        tinySpec(),
		Width:         8,
		DataPipe:      1,
		LinkDelay:     1,
		CascadeWidth:  1,
		FastReclaim:   true,
		NetSeed:       7,
		RetryLimit:    10,
		ListenTimeout: 120,
		Workers:       4,
		Traffic:       Burst,
		TrafficSeed:   11,
		Messages:      8,
		PayloadBytes:  12,
		InjectCycles:  1,
	}
}

// deliveryBug fakes a routing-layer defect without touching simulator
// source: every forward word leaving endpoint 0's injection links has
// one payload bit flipped, so endpoint 0 can never complete a send even
// though every destination stays structurally reachable. The delivery
// oracle must flag each of its messages.
func deliveryBug() Hooks {
	return Hooks{Mutate: func(n *netsim.Network) {
		for k := range n.Topo.Inject[0] {
			n.InjectLink(0, k).SetCorruptor(func(w word.Word) word.Word {
				w.Payload ^= 2
				return w
			}, nil)
		}
	}}
}

// TestEnsembleOraclesClean is the harness's standing gate: a window of
// generated scenarios must pass the whole oracle battery on a clean
// tree. A failure here is a real simulator bug (or an unsound oracle)
// — the error message carries the replay line either way.
func TestEnsembleOraclesClean(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 12
	}
	if raceEnabled {
		n = 6
	}
	for seed := int64(0); seed < int64(n); seed++ {
		rep := Run(Generate(seed), Hooks{})
		for _, f := range rep.Failures {
			t.Errorf("seed %d: %s", seed, f)
		}
		if rep.Failed() {
			t.Fatalf("seed %d failed; reproduce with: %s", seed, rep.Repro())
		}
		if rep.Offered == 0 {
			t.Fatalf("seed %d offered no messages; the generator is miscalibrated", seed)
		}
	}
}

// TestParallelDifferentialWorkers runs the same congested scenario at
// workers 0, 1 and 4: the acceptance gate for the serial/parallel
// differential oracle, and the scenario the CI race job leans on.
func TestParallelDifferentialWorkers(t *testing.T) {
	for _, workers := range []int{0, 1, 4} {
		s := Scenario{
			Preset:        "fig1",
			Width:         8,
			DataPipe:      1,
			LinkDelay:     1,
			CascadeWidth:  1,
			FastReclaim:   true,
			NetSeed:       21,
			RetryLimit:    100,
			ListenTimeout: 200,
			Workers:       workers,
			Traffic:       Burst,
			TrafficSeed:   31,
			Messages:      48,
			PayloadBytes:  16,
			InjectCycles:  1,
		}
		rep := Run(s, Hooks{})
		for _, f := range rep.Failures {
			t.Errorf("workers=%d: %s", workers, f)
		}
		if rep.Delivered != rep.Offered {
			t.Errorf("workers=%d: delivered %d of %d in a fault-free burst",
				workers, rep.Delivered, rep.Offered)
		}
	}
}

// TestInjectedDeliveryBugCaught: the mutation gate. A corrupted
// injection path must trip the delivery oracle (reachable destination,
// message never delivered) — proof the oracle detects real
// delivery-guarantee violations rather than vacuously passing.
func TestInjectedDeliveryBugCaught(t *testing.T) {
	rep := Run(tinyScenario(), deliveryBug())
	if !rep.Failed() {
		t.Fatal("delivery bug went undetected")
	}
	if !hasOracle(rep, "delivery") {
		t.Fatalf("expected a delivery-oracle failure, got: %v", rep.Failures)
	}
}

// pinnedBugRepro is the spec the shrinker reduces tinyScenario to under
// deliveryBug — pinned so shrinker regressions (or spec-format drift)
// are caught, and so the repro line documented in docs/FUZZING.md stays
// honest.
const pinnedBugRepro = "mf1;topo=4x1:2.1.2,2.1.2;w=8;hw=0;dp=1;vtd=1;cas=1;fast=1;ff=0;wk=0;ns=7;mas=0;retry=10;lt=120;tr=burst;ts=11;msgs=1;rate=0;out=0;think=0;pb=8;ic=1"

// TestInjectedBugShrinksToPinnedRepro: the shrinker must reduce the
// failing scenario to the one-message serial minimum, the minimum must
// still fail under the bug, and the emitted spec must replay — the
// full catch → shrink → repro loop the ISSUE demands.
func TestInjectedBugShrinksToPinnedRepro(t *testing.T) {
	min, minRep := Shrink(tinyScenario(), deliveryBug(), 150)
	if !minRep.Failed() {
		t.Fatal("shrink lost the failure")
	}
	if min.Workers != 0 || min.Messages != 1 || min.PayloadBytes != MinPayloadBytes {
		t.Errorf("shrink left slack: workers=%d messages=%d payload=%d",
			min.Workers, min.Messages, min.PayloadBytes)
	}
	if got := EncodeSpec(min); got != pinnedBugRepro {
		t.Errorf("shrunk spec drifted:\n  got:  %s\n  want: %s", got, pinnedBugRepro)
	}
	if !strings.Contains(minRep.Repro(), "metrofuzz -replay") {
		t.Errorf("repro line malformed: %s", minRep.Repro())
	}

	// The pinned spec replays: still failing under the bug, clean on the
	// unmutated tree.
	s, err := DecodeSpec(pinnedBugRepro)
	if err != nil {
		t.Fatalf("pinned repro does not decode: %v", err)
	}
	if rep := Run(s, deliveryBug()); !rep.Failed() || !hasOracle(rep, "delivery") {
		t.Fatalf("pinned repro no longer reproduces the bug: %v", rep.Failures)
	}
	if rep := Run(s, Hooks{}); rep.Failed() {
		t.Fatalf("pinned repro fails on a clean tree: %v", rep.Failures)
	}
}

// TestTamperedDeliveryCaught: a delivery-path bug that rewrites payload
// bytes must trip the payload oracle — the end-to-end integrity check
// that backs the paper's checksum story independently of the CRC.
func TestTamperedDeliveryCaught(t *testing.T) {
	s := tinyScenario()
	s.Workers = 0
	bug := Hooks{TamperDeliver: func(dest int, payload []byte, intact bool) ([]byte, bool) {
		if intact && len(payload) > 7 {
			payload[7] ^= 1
		}
		return payload, intact
	}}
	rep := Run(s, bug)
	if !rep.Failed() || !hasOracle(rep, "payload") {
		t.Fatalf("tampered deliveries not flagged by the payload oracle: %v", rep.Failures)
	}
}

// TestDroppedResultCaught: losing completion records must trip the
// conservation oracle — every offered message produces exactly one
// Result, the source-responsibility ledger the endpoints guarantee.
func TestDroppedResultCaught(t *testing.T) {
	s := tinyScenario()
	s.Workers = 0
	bug := Hooks{DropResult: func(r nic.Result) bool { return r.Msg.Src == 1 }}
	rep := Run(s, bug)
	if !rep.Failed() || !hasOracle(rep, "conservation") {
		t.Fatalf("dropped results not flagged by the conservation oracle: %v", rep.Failures)
	}
}

// TestFaultViewReachability pins the structural-reachability model the
// delivery oracle leans on: dead injection links, dead routers and
// disabled final-stage ports must excuse exactly the pairs they cut off.
func TestFaultViewReachability(t *testing.T) {
	s := Scenario{Preset: "fig1"} // 16 endpoints, 2 links each, dilated stages
	view := func(plan fault.Plan) *faultView {
		return newFaultView(&legOut{fired: plan}, s)
	}

	if v := view(nil); !v.reachable(0, 5) || !v.reachable(7, 0) {
		t.Fatal("fault-free pairs must be reachable")
	}
	// Severing both of an endpoint's injection links cuts off everything
	// it sends, and nothing it receives.
	v := view(fault.Plan{
		{Kind: fault.LinkKill, Stage: -1, Index: 0, Port: 0},
		{Kind: fault.LinkKill, Stage: -1, Index: 0, Port: 1},
	})
	if v.reachable(0, 5) {
		t.Fatal("endpoint with no live injection links can still send")
	}
	if !v.reachable(5, 0) {
		t.Fatal("inbound path should be unaffected by injection-link kills")
	}
	// One dead injection link leaves the other path alive.
	if v := view(fault.Plan{{Kind: fault.LinkKill, Stage: -1, Index: 0, Port: 0}}); !v.reachable(0, 5) {
		t.Fatal("one live injection link should suffice")
	}
	// Figure 1's dilated early stages tolerate any single router loss.
	if v := view(fault.Plan{{Kind: fault.RouterKill, Stage: 0, Index: 0}}); !v.reachable(0, 5) || !v.reachable(1, 9) {
		t.Fatal("single stage-0 router loss should not isolate anything in Figure 1")
	}
}

func hasOracle(rep *Report, oracle string) bool {
	for _, f := range rep.Failures {
		if f.Oracle == oracle {
			return true
		}
	}
	return false
}

// TestRecorderHookIsPassive checks the -trace seam: attaching the
// flight recorder to a run captures a non-empty event stream without
// perturbing the scenario's outcome — the recorded run is the same
// experiment as the bare one.
func TestRecorderHookIsPassive(t *testing.T) {
	s := tinyScenario()
	bare := Run(s, Hooks{})
	rec := telemetry.New(telemetry.Options{})
	traced := Run(s, Hooks{Recorder: rec})
	if bare.Failed() || traced.Failed() {
		t.Fatalf("clean scenario failed: bare=%v traced=%v", bare.Failures, traced.Failures)
	}
	if bare.Cycles != traced.Cycles || bare.Delivered != traced.Delivered || bare.Offered != traced.Offered {
		t.Fatalf("recorder changed the run: bare %d cycles %d/%d, traced %d cycles %d/%d",
			bare.Cycles, bare.Delivered, bare.Offered,
			traced.Cycles, traced.Delivered, traced.Offered)
	}
	if rec.Total() == 0 {
		t.Fatal("recorder captured no events")
	}
	sum := telemetry.Summarize(rec.Snapshot())
	if sum.Delivered != traced.Delivered {
		t.Errorf("trace reconstructs %d deliveries, harness saw %d", sum.Delivered, traced.Delivered)
	}
}

// TestKernelOracleClean runs a window of generated scenarios with the
// kernel-vs-reference leg armed: the compiled kernel must reproduce the
// serial reference bit for bit across everything the generator throws
// at it — mixed topologies, cascades, faults, variable link delays.
func TestKernelOracleClean(t *testing.T) {
	n := 12
	if testing.Short() || raceEnabled {
		n = 4
	}
	for seed := int64(0); seed < int64(n); seed++ {
		rep := Run(Generate(seed), Hooks{KernelOracle: true})
		for _, f := range rep.Failures {
			t.Errorf("seed %d: %s", seed, f)
		}
		if rep.Failed() {
			t.Fatalf("seed %d failed; reproduce with: %s -kernel", seed, rep.Repro())
		}
	}
}

// TestKernelOracleCatchesDivergence: the mutation gate for the kernel
// oracle. A defect planted only in the kernel leg (the hook checks
// which engine it landed on) must trip the kernel differential — proof
// the oracle compares the legs rather than vacuously passing.
func TestKernelOracleCatchesDivergence(t *testing.T) {
	s := tinyScenario()
	s.Workers = 0
	bug := Hooks{KernelOracle: true, Mutate: func(n *netsim.Network) {
		if n.Engine.Kernel() == nil {
			return // leave the serial reference leg clean
		}
		for k := range n.Topo.Inject[0] {
			n.InjectLink(0, k).SetCorruptor(func(w word.Word) word.Word {
				w.Payload ^= 2
				return w
			}, nil)
		}
	}}
	rep := Run(s, bug)
	if !rep.Failed() || !hasOracle(rep, "kernel") {
		t.Fatalf("kernel-leg divergence not flagged by the kernel oracle: %v", rep.Failures)
	}
}
