package metro_test

import (
	"testing"

	"metro"
)

func TestPublicTopologyAPI(t *testing.T) {
	for name, spec := range map[string]metro.TopologySpec{
		"fig1":    metro.Figure1Topology(),
		"fig3":    metro.Figure3Topology(),
		"net32":   metro.Topology32(),
		"net32r8": metro.Topology32Radix8(),
	} {
		top, err := metro.BuildTopology(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if top.RouterCount() == 0 {
			t.Fatalf("%s: no routers", name)
		}
		if n := top.PathCount(0, spec.Endpoints-1); n < 2 {
			t.Fatalf("%s: only %d paths — not multipath", name, n)
		}
	}
}

func TestPublicSendOne(t *testing.T) {
	n, err := metro.BuildNetwork(metro.NetworkParams{
		Spec:        metro.Figure1Topology(),
		Width:       8,
		FastReclaim: true,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := metro.SendOne(n, 1, 9, []byte("api"), 5000)
	if !ok || !res.Delivered {
		t.Fatalf("SendOne failed: %+v", res)
	}
	if res.Done <= res.Injected {
		t.Fatal("no latency measured")
	}
}

func TestPublicClosedLoop(t *testing.T) {
	p, err := metro.RunClosedLoop(metro.RunSpec{
		Net: metro.NetworkParams{
			Spec:        metro.Figure1Topology(),
			Width:       8,
			FastReclaim: true,
			Seed:        2,
		},
		Load:          0.2,
		MsgBytes:      8,
		Pattern:       metro.UniformTraffic{},
		Outstanding:   1,
		WarmupCycles:  500,
		MeasureCycles: 3000,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Messages == 0 || p.Delivered != p.Messages {
		t.Fatalf("closed loop lost messages: %+v", p)
	}
}

func TestPublicTables(t *testing.T) {
	rows := metro.Table3()
	paper := metro.PaperT2032()
	if len(rows) != 16 || len(paper) != 16 {
		t.Fatalf("Table 3 has %d rows, paper list %d", len(rows), len(paper))
	}
	for i, im := range rows {
		if im.T2032() != paper[i] {
			t.Fatalf("row %d: %f != %f", i, im.T2032(), paper[i])
		}
	}
	if len(metro.Table5()) != 7 {
		t.Fatalf("Table 5 has %d rows", len(metro.Table5()))
	}
}

func TestPublicFaultInjection(t *testing.T) {
	n, err := metro.BuildNetwork(metro.NetworkParams{
		Spec:        metro.Figure1Topology(),
		Width:       8,
		FastReclaim: true,
		Seed:        4,
		RetryLimit:  300,
	})
	if err != nil {
		t.Fatal(err)
	}
	metro.InjectFaults(n, metro.FaultPlan{
		{At: 0, Kind: metro.FaultRouterKill, Stage: 0, Index: 0},
	})
	res, ok := metro.SendOne(n, 0, 15, []byte("x"), 50000)
	if !ok || !res.Delivered {
		t.Fatalf("delivery with killed router failed: %+v", res)
	}
}

func TestPublicScanAndCascade(t *testing.T) {
	cfg := metro.RouterConfig{Inputs: 4, Outputs: 4, Width: 4, MaxDilation: 2,
		DataPipe: 1, MaxVTD: 4, RandomInputs: 2, ScanPaths: 2}
	set := metro.DefaultRouterSettings(cfg)
	r := metro.NewRouter("pub", cfg, set, 7)
	mt := metro.NewMultiTAP(r, 0x123)
	if len(mt.TAPs()) != 2 {
		t.Fatalf("TAPs = %d", len(mt.TAPs()))
	}
	reg := metro.NewSettingsRegister(r)
	if bits, ok := mt.ReadSettings(reg.Len()); !ok || len(bits) != reg.Len() {
		t.Fatal("scan read failed")
	}
	g := metro.NewCascadeGroup("pubcascade", cfg, set, 2, 11)
	if g.Width() != 2 {
		t.Fatalf("cascade width = %d", g.Width())
	}
	l := metro.NewLink("pub", 1)
	if res := metro.LoopbackTest(l, 4, nil); !res.Passed {
		t.Fatalf("healthy loopback failed: %+v", res)
	}
}

func TestPublicCascadedNetwork(t *testing.T) {
	n, err := metro.BuildNetwork(metro.NetworkParams{
		Spec:         metro.Figure1Topology(),
		Width:        4,
		CascadeWidth: 2,
		FastReclaim:  true,
		Seed:         8,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := metro.SendOne(n, 3, 12, []byte("wide"), 5000)
	if !ok || !res.Delivered {
		t.Fatalf("cascaded delivery failed: %+v", res)
	}
}
