package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"metro/internal/metrofuzz"
)

// quickSpec is the canonical encoding of a small generated scenario —
// valid, fast to simulate, and deterministic.
func quickSpec(t *testing.T, seed int64) string {
	t.Helper()
	return metrofuzz.EncodeSpec(metrofuzz.Generate(seed))
}

// newTestServer starts an in-process Server (with workers, unlike the
// queue-admission tests) and registers a bounded drain on cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, hs
}

func submit(t *testing.T, base, spec, query string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs"+query, "text/plain", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestSubmitErrors pins every API error path with its status code and a
// recognizable message.
func TestSubmitErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	valid := quickSpec(t, 1)

	cases := []struct {
		name    string
		spec    string
		query   string
		status  int
		wantErr string
	}{
		{"malformed field", "mf1;topo=fig1;w=banana", "", http.StatusBadRequest, "metrofuzz"},
		{"unknown version", "mf9;topo=fig1", "", http.StatusBadRequest, "metrofuzz"},
		{"empty body", "", "", http.StatusBadRequest, "empty spec"},
		{"trailing garbage", valid + ";w=8 trailing junk", "", http.StatusBadRequest, "whitespace or control byte"},
		{"second line smuggled", valid + "\nmf1;topo=fig1\n", "", http.StatusBadRequest, "whitespace or control byte"},
		{"unknown engine", valid, "?engine=warp", http.StatusBadRequest, "unknown engine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := submit(t, hs.URL, tc.spec, tc.query)
			body := readBody(t, resp)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d; body: %s", resp.StatusCode, tc.status, body)
			}
			var ep errorPayload
			if err := json.Unmarshal(body, &ep); err != nil {
				t.Fatalf("error body is not JSON: %v; body: %s", err, body)
			}
			if !strings.Contains(ep.Error, tc.wantErr) {
				t.Fatalf("error %q does not mention %q", ep.Error, tc.wantErr)
			}
		})
	}

	t.Run("oversized body", func(t *testing.T) {
		resp := submit(t, hs.URL, "mf1;"+strings.Repeat("x", maxSpecBytes), "")
		readBody(t, resp)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", resp.StatusCode)
		}
	})

	t.Run("unknown job", func(t *testing.T) {
		resp, err := http.Get(hs.URL + "/v1/jobs/" + strings.Repeat("0", 64))
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
	})
}

// TestQueueFull asserts the 429 admission path: with no workers the
// queue never drains, so the first QueueDepth distinct specs are
// admitted and the next is refused.
func TestQueueFull(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 0, QueueDepth: 2})
	for i := int64(1); i <= 2; i++ {
		resp := submit(t, hs.URL, quickSpec(t, i), "")
		readBody(t, resp)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: status %d, want 202", i, resp.StatusCode)
		}
	}
	resp := submit(t, hs.URL, quickSpec(t, 3), "")
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestCoalescing asserts a duplicate of a queued job attaches to the
// in-flight record (X-Coalesced) instead of consuming queue depth.
func TestCoalescing(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 0, QueueDepth: 1})
	spec := quickSpec(t, 1)
	first := submit(t, hs.URL, spec, "")
	readBody(t, first)
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: status %d", first.StatusCode)
	}
	if got := first.Header.Get("X-Coalesced"); got != "" {
		t.Fatalf("first submission coalesced: %q", got)
	}
	// The queue is now full; only coalescing lets the duplicate in.
	dup := submit(t, hs.URL, spec, "")
	readBody(t, dup)
	if dup.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate: status %d, want 202", dup.StatusCode)
	}
	if dup.Header.Get("X-Coalesced") != "true" {
		t.Fatal("duplicate not marked X-Coalesced")
	}
	if dup.Header.Get("X-Job") != first.Header.Get("X-Job") {
		t.Fatal("duplicate got a different job ID")
	}
	// A distinct spec, by contrast, is refused: the queue really is full.
	other := submit(t, hs.URL, quickSpec(t, 2), "")
	readBody(t, other)
	if other.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("distinct spec: status %d, want 429", other.StatusCode)
	}
}

// TestDrainRejects asserts a draining server refuses new work with 503
// while a completed job remains pollable.
func TestDrainRejects(t *testing.T) {
	s := New(Config{Workers: 1})
	hs := httptest.NewServer(s)
	defer hs.Close()
	spec := quickSpec(t, 1)
	done := submit(t, hs.URL, spec, "?wait=1")
	readBody(t, done)
	if done.StatusCode != http.StatusOK {
		t.Fatalf("warmup run: status %d", done.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp := submit(t, hs.URL, quickSpec(t, 2), "")
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body: %s", resp.StatusCode, body)
	}
	// The cached pre-drain result is still served.
	hit := submit(t, hs.URL, spec, "")
	readBody(t, hit)
	if hit.StatusCode != http.StatusOK || hit.Header.Get("X-Cache") != "hit" {
		t.Fatalf("post-drain cache read: status %d, X-Cache %q", hit.StatusCode, hit.Header.Get("X-Cache"))
	}
}

// TestDeadline asserts a job that exceeds its execution budget reports
// status "deadline" as 504 and is never cached.
func TestDeadline(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, JobTimeout: time.Nanosecond, ProgressPeriod: 1})
	resp := submit(t, hs.URL, quickSpec(t, 1), "?wait=1")
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body: %s", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusDeadline {
		t.Fatalf("status %q, want %q", res.Status, StatusDeadline)
	}
	if st := s.cache.Stats(); st.Entries != 0 {
		t.Fatalf("deadline result was cached (%d entries); deadline outcomes are load accidents, not content", st.Entries)
	}
	// Polling the retained record also reports 504.
	poll, err := http.Get(hs.URL + "/v1/jobs/" + resp.Header.Get("X-Job"))
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, poll)
	if poll.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("poll status %d, want 504", poll.StatusCode)
	}
}

// TestCacheHitByteIdentity is the core tentpole assertion, in-process:
// a repeat submission is served from the cache, byte-identical to the
// first response, without executing again. The witness is the executed
// counter, not timing.
func TestCacheHitByteIdentity(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2})
	spec := quickSpec(t, 1)

	miss := submit(t, hs.URL, spec, "?wait=1")
	missBody := readBody(t, miss)
	if miss.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d; body: %s", miss.StatusCode, missBody)
	}
	if got := miss.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first run X-Cache %q, want miss", got)
	}

	s.mu.Lock()
	executedAfterFirst := s.counters.Executed
	s.mu.Unlock()

	hit := submit(t, hs.URL, spec, "?wait=1")
	hitBody := readBody(t, hit)
	if hit.StatusCode != http.StatusOK {
		t.Fatalf("resubmission: status %d", hit.StatusCode)
	}
	if got := hit.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("resubmission X-Cache %q, want hit", got)
	}
	if !bytes.Equal(missBody, hitBody) {
		t.Fatalf("cache hit body differs from first response:\nfirst: %s\nhit:   %s", missBody, hitBody)
	}

	s.mu.Lock()
	executedAfterHit := s.counters.Executed
	served := s.counters.CacheServed
	s.mu.Unlock()
	if executedAfterHit != executedAfterFirst {
		t.Fatalf("resubmission re-simulated: executed %d -> %d", executedAfterFirst, executedAfterHit)
	}
	if served == 0 {
		t.Fatal("cacheServed counter did not advance")
	}

	// The reordered-but-equal spec hits the same entry: the key is
	// content-addressed over the canonical encoding.
	fields := strings.Split(spec, ";")
	reordered := strings.Join(append(append([]string{fields[0]}, fields[len(fields)-1]), fields[1:len(fields)-1]...), ";")
	if reordered == spec {
		t.Fatalf("test bug: reordering produced the identical line %q", spec)
	}
	re := submit(t, hs.URL, reordered, "?wait=1")
	reBody := readBody(t, re)
	if re.Header.Get("X-Cache") != "hit" {
		t.Fatalf("reordered spec missed the cache (X-Cache %q)", re.Header.Get("X-Cache"))
	}
	if !bytes.Equal(missBody, reBody) {
		t.Fatal("reordered spec served different bytes")
	}
}

// TestEngineAndTraceAddressing asserts the execution options are part
// of the content address: kernel and trace submissions of the same spec
// are distinct entries with the extra body content they promise.
func TestEngineAndTraceAddressing(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	spec := quickSpec(t, 1)

	plain := readBody(t, submit(t, hs.URL, spec, "?wait=1"))
	kernel := submit(t, hs.URL, spec, "?wait=1&engine=kernel")
	kernelBody := readBody(t, kernel)
	if kernel.Header.Get("X-Cache") != "miss" {
		t.Fatal("kernel submission hit the reference entry")
	}
	var pr, kr Result
	if err := json.Unmarshal(plain, &pr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(kernelBody, &kr); err != nil {
		t.Fatal(err)
	}
	hasKernel := func(oracles []string) bool {
		for _, o := range oracles {
			if o == "kernel" {
				return true
			}
		}
		return false
	}
	if hasKernel(pr.Oracles) || !hasKernel(kr.Oracles) {
		t.Fatalf("oracle lists wrong: reference %v, kernel %v", pr.Oracles, kr.Oracles)
	}
	if pr.Cycles != kr.Cycles || pr.Delivered != kr.Delivered {
		t.Fatalf("determinism broken across engines: %+v vs %+v", pr, kr)
	}

	traced := submit(t, hs.URL, spec, "?wait=1&trace=1")
	tracedBody := readBody(t, traced)
	if traced.Header.Get("X-Cache") != "miss" {
		t.Fatal("traced submission hit the untraced entry")
	}
	var tr Result
	if err := json.Unmarshal(tracedBody, &tr); err != nil {
		t.Fatal(err)
	}
	if pr.Trace != "" || tr.Trace == "" {
		t.Fatalf("trace presence wrong: plain %d bytes, traced %d bytes", len(pr.Trace), len(tr.Trace))
	}
	if !strings.HasPrefix(tr.Trace, "mtr1") {
		t.Fatalf("trace is not an mtr1 stream: %.40q", tr.Trace)
	}

	// GET /trace serves the stream verbatim; the untraced entry 404s.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + traced.Header.Get("X-Job") + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	got := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || string(got) != tr.Trace {
		t.Fatalf("trace endpoint: status %d, %d bytes, want %d", resp.StatusCode, len(got), len(tr.Trace))
	}
	resp, err = http.Get(hs.URL + "/v1/jobs/" + plainJobID(t, plain) + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("untraced trace fetch: status %d, want 404", resp.StatusCode)
	}
}

func plainJobID(t *testing.T, body []byte) string {
	t.Helper()
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	return res.ID
}

// TestEventStream asserts the SSE endpoint replays progress for a
// completed job and terminates with the done event carrying the result.
func TestEventStream(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, ProgressPeriod: 16})
	spec := quickSpec(t, 1)
	first := submit(t, hs.URL, spec, "?wait=1")
	firstBody := readBody(t, first)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d", first.StatusCode)
	}
	id := first.Header.Get("X-Job")

	resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	var progress []progressPayload
	var doneData []byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			event = v
			continue
		}
		v, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		switch event {
		case "progress":
			var p progressPayload
			if err := json.Unmarshal([]byte(v), &p); err != nil {
				t.Fatalf("bad progress frame %q: %v", v, err)
			}
			progress = append(progress, p)
		case "done":
			doneData = []byte(v)
		}
		if event == "done" {
			break
		}
	}
	if len(progress) == 0 {
		t.Fatal("no progress frames replayed for a completed job")
	}
	// Cycles are monotone within a leg but the differential leg restarts
	// the clock, so the stream as a whole may step back exactly at leg
	// boundaries: every decrease must land back at a fresh clock, never
	// mid-count.
	for i := 1; i < len(progress); i++ {
		if progress[i].Cycle < progress[i-1].Cycle && progress[i].Cycle > uint64(16) {
			t.Fatalf("progress cycle regressed mid-leg: %d then %d", progress[i-1].Cycle, progress[i].Cycle)
		}
	}
	if !bytes.Equal(append(doneData, '\n'), firstBody) {
		t.Fatalf("done event differs from served result:\ndone: %s\nbody: %s", doneData, firstBody)
	}
}

// TestStats asserts /v1/stats reports the counters that make cache
// behaviour observable.
func TestStats(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	spec := quickSpec(t, 1)
	readBody(t, submit(t, hs.URL, spec, "?wait=1"))
	readBody(t, submit(t, hs.URL, spec, "?wait=1"))
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	var st statsPayload
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats not JSON: %v; body: %s", err, body)
	}
	if st.Counters.Submitted != 2 || st.Counters.Executed != 1 || st.Counters.CacheServed != 1 {
		t.Fatalf("counters %+v, want submitted=2 executed=1 cacheServed=1", st.Counters)
	}
	if st.Cache.Entries != 1 || st.Cache.Hits != 1 {
		t.Fatalf("cache stats %+v", st.Cache)
	}
}

// TestConcurrentDuplicates hammers one spec from many goroutines and
// asserts exactly one execution with every response byte-identical —
// the coalescing/caching invariant under contention (run with -race).
func TestConcurrentDuplicates(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 4})
	spec := quickSpec(t, 1)
	const clients = 16
	bodies := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(hs.URL+"/v1/jobs?wait=1", "text/plain", strings.NewReader(spec))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d served different bytes", i)
		}
	}
	s.mu.Lock()
	executed := s.counters.Executed
	s.mu.Unlock()
	if executed != 1 {
		t.Fatalf("%d executions for %d identical submissions, want 1", executed, clients)
	}
}
