// Command metrovet is the repository's determinism and simulator-
// discipline static-analysis pass (see docs/DETERMINISM.md).
//
// Usage:
//
//	go run ./cmd/metrovet [flags] [./... | ./dir | ./dir/...]
//
// It walks the requested packages, runs every analyzer in
// internal/analysis, prints findings as "file:line: rule-id: message"
// and exits nonzero if any finding is neither inline-suppressed nor
// baselined. CI runs it alongside go vet.
//
// Flags:
//
//	-baseline file        read accepted findings from file
//	-write-baseline file  write current findings to file and exit 0
//	                      (refuses to overwrite an existing file
//	                      without -force)
//	-force                allow -write-baseline to overwrite
//	-json                 emit findings as the metrovet JSON report
//	-sarif                emit findings as a SARIF 2.1.0 log
//	-cache dir            keep an incremental analysis cache in dir,
//	                      keyed by file content hashes; unchanged trees
//	                      skip type-checking entirely
//	-rules                print the rule set and exit
//	-machines             print the extracted protocol state machines
//	-write-machines dir   write the extracted machine tables to dir
//	-check-machines dir   diff the extracted tables against dir, exit 1
//	                      on any difference (the CI golden gate)
//	-bce                  compile the hot-path packages with the SSA
//	                      backend's check_bce debug pass and diff the
//	                      surviving bounds checks against the allowlist
//	                      (the CI bounds-check-elimination gate)
//	-bce-allowlist file   the allowlist -bce diffs against
//	                      (default docs/bce_allowlist.txt)
//	-bce-write            regenerate the allowlist from the current
//	                      compiler output instead of diffing
//	-v                    also print type-checker diagnostics and cache
//	                      status (normally silent: a tree that builds
//	                      has none)
//
// Exit codes: 0 clean, 1 findings, 2 usage or internal error. The -json
// and -sarif documents are byte-stable for a given tree and are pinned
// by golden tests.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"metro/internal/analysis"
)

func main() {
	baselinePath := flag.String("baseline", "", "read accepted findings from `file`")
	writeBaseline := flag.String("write-baseline", "", "write current findings to `file` and exit 0")
	force := flag.Bool("force", false, "allow -write-baseline to overwrite an existing file")
	jsonOut := flag.Bool("json", false, "emit findings as the metrovet JSON report")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	cacheDir := flag.String("cache", "", "keep an incremental analysis cache in `dir`")
	listRules := flag.Bool("rules", false, "print the rule set and exit")
	printMachines := flag.Bool("machines", false, "print the extracted protocol state machines")
	writeMachines := flag.String("write-machines", "", "write extracted machine tables to `dir`")
	checkMachines := flag.String("check-machines", "", "diff extracted tables against `dir`, exit 1 on any difference")
	bce := flag.Bool("bce", false, "diff surviving hot-path bounds checks against the allowlist")
	bceAllowlist := flag.String("bce-allowlist", "docs/bce_allowlist.txt", "allowlist `file` for -bce")
	bceWrite := flag.Bool("bce-write", false, "regenerate the -bce allowlist from current compiler output")
	verbose := flag.Bool("v", false, "print type-checker diagnostics and cache status")
	flag.Parse()

	if *listRules {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-6s %-22s %s\n", analysis.RuleID(a.Name), a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fatal(fmt.Errorf("-json and -sarif are mutually exclusive"))
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}

	if *bce || *bceWrite {
		runBCE(root, *bceAllowlist, *bceWrite)
		return
	}

	if *printMachines || *writeMachines != "" || *checkMachines != "" {
		loader, err := analysis.NewLoader(root)
		if err != nil {
			fatal(err)
		}
		runMachines(loader, *printMachines, *writeMachines, *checkMachines)
		return
	}

	res, err := analysis.RunTree(root, analysis.TreeOptions{
		Patterns: flag.Args(),
		CacheDir: *cacheDir,
	})
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, terr := range res.TypeErrs {
			fmt.Fprintf(os.Stderr, "metrovet: typecheck: %s\n", terr)
		}
		if *cacheDir != "" {
			if res.FullHit {
				fmt.Fprintln(os.Stderr, "metrovet: cache: full hit")
			} else {
				fmt.Fprintf(os.Stderr, "metrovet: cache: %d/%d package hit(s)\n", res.PkgHits, res.Packages)
			}
		}
	}
	findings := res.Findings

	if *writeBaseline != "" {
		if !*force {
			if _, err := os.Stat(*writeBaseline); err == nil {
				fatal(fmt.Errorf("%s exists; pass -force to overwrite it", *writeBaseline))
			}
		}
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fatal(err)
		}
		if err := analysis.WriteBaseline(f, findings); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("metrovet: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}
	if *baselinePath != "" {
		base, err := analysis.ReadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		findings = base.Filter(findings)
	}

	switch {
	case *jsonOut:
		if err := analysis.EncodeJSON(os.Stdout, findings); err != nil {
			fatal(err)
		}
	case *sarifOut:
		if err := analysis.EncodeSARIF(os.Stdout, findings); err != nil {
			fatal(err)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "metrovet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// runMachines extracts the protocol state machines (analysis.DefaultMachines)
// and prints, writes, or golden-diffs their transition tables.
func runMachines(loader *analysis.Loader, print bool, writeDir, checkDir string) {
	bad := false
	for _, spec := range analysis.DefaultMachines() {
		pkgs, err := loader.Load(spec.Pattern)
		if err != nil {
			fatal(err)
		}
		m, err := analysis.ExtractMachine(pkgs[0], spec.Type)
		if err != nil {
			fatal(err)
		}
		text := m.Render(spec.Label())
		switch {
		case writeDir != "":
			path := filepath.Join(writeDir, spec.FileName())
			if err := os.MkdirAll(writeDir, 0o755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("metrovet: wrote %s (%d transitions)\n", path, len(m.Transitions))
		case checkDir != "":
			path := filepath.Join(checkDir, spec.FileName())
			want, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			if diff := analysis.DiffTables(string(want), text); diff != nil {
				bad = true
				fmt.Fprintf(os.Stderr, "metrovet: %s: extracted machine differs from %s:\n", spec.Label(), path)
				for _, l := range diff {
					fmt.Fprintf(os.Stderr, "  %s\n", l)
				}
			}
		default:
			fmt.Print(text)
			fmt.Println()
		}
	}
	if bad {
		fmt.Fprintln(os.Stderr, "metrovet: state-machine tables are stale; regenerate with -write-machines and review the protocol change")
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the first go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("metrovet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metrovet:", err)
	os.Exit(2)
}
