// Package clock implements the synchronous simulation kernel underlying the
// METRO network model.
//
// METRO networks are pipelined circuit-switched systems: every routing
// component runs synchronously from a central clock, and data takes a small,
// constant number of clock cycles to pass through each component (paper,
// Section 3). The kernel models this directly as a two-phase clocked
// engine. On every cycle each component is first asked to Eval — read the
// values its inputs held at the end of the previous cycle, update private
// state, and stage new output values — and then every component is asked to
// Commit — latch the staged outputs so they become visible next cycle.
//
// Because components communicate only through link pipelines (package link),
// whose outputs change only in Commit, the order in which components Eval
// within a cycle is irrelevant: the model is a faithful register-transfer
// abstraction of a synchronous circuit.
package clock

// Component is a clocked element of the simulated system.
type Component interface {
	// Eval reads inputs as of the end of the previous cycle, updates
	// internal state, and stages outputs. It must not expose new output
	// values to other components before Commit.
	Eval(cycle uint64)
	// Commit latches staged outputs, making them visible on the next
	// cycle's Eval.
	Commit(cycle uint64)
}

// Engine drives a set of components from a single central clock.
type Engine struct {
	components []Component
	cycle      uint64
}

// New returns an empty engine at cycle 0.
func New() *Engine { return &Engine{} }

// Add registers components with the engine's clock.
func (e *Engine) Add(cs ...Component) { e.components = append(e.components, cs...) }

// Cycle returns the number of completed clock cycles.
func (e *Engine) Cycle() uint64 { return e.cycle }

// Components returns the number of registered components.
func (e *Engine) Components() int { return len(e.components) }

// Step advances the system by one clock cycle.
func (e *Engine) Step() {
	c := e.cycle
	for _, comp := range e.components {
		comp.Eval(c)
	}
	for _, comp := range e.components {
		comp.Commit(c)
	}
	e.cycle++
}

// Run advances the system by n clock cycles.
func (e *Engine) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		e.Step()
	}
}

// RunUntil steps the clock until done reports true or max cycles have
// elapsed (counted from the current cycle), whichever comes first. It
// returns true if done reported true.
func (e *Engine) RunUntil(done func() bool, max uint64) bool {
	for i := uint64(0); i < max; i++ {
		if done() {
			return true
		}
		e.Step()
	}
	return done()
}
