package core

import "testing"

// TestFPStateString pins the mnemonic for every forward-port state: the
// names appear in invariant failures and traces, and the exhaustive list
// guards against a new state being added without a name.
func TestFPStateString(t *testing.T) {
	want := []struct {
		s    fpState
		name string
	}{
		{fpIdle, "IDLE"},
		{fpHeader, "HEADER"},
		{fpForward, "FORWARD"},
		{fpReversed, "REVERSED"},
		{fpBlockedWait, "BLOCKED-WAIT"},
		{fpBlockedReply, "BLOCKED-REPLY"},
		{fpDrain, "DRAIN"},
	}
	if len(want) != len(fpStateNames) {
		t.Fatalf("test covers %d states, fpStateNames has %d", len(want), len(fpStateNames))
	}
	for _, tc := range want {
		if got := tc.s.String(); got != tc.name {
			t.Errorf("fpState(%d).String() = %q, want %q", uint8(tc.s), got, tc.name)
		}
	}
	if got := fpState(200).String(); got != "fpState(200)" {
		t.Errorf("out-of-range String() = %q, want %q", got, "fpState(200)")
	}
}
