package main_test

import (
	"testing"

	"metro/internal/clitest"
)

// TestGoldenRules pins the -rules listing: the rule names are the
// annotation vocabulary (//metrovet:alloc etc.) the rest of the tree
// depends on, so renames must be deliberate.
func TestGoldenRules(t *testing.T) {
	clitest.Golden(t, "rules", "metrovet", "-rules")
}

// TestCleanPackagePasses runs the analyzers on a real package that must
// stay finding-free: a zero-exit, zero-output run is the contract CI's
// whole-tree invocation depends on.
func TestCleanPackagePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	out := clitest.Run(t, "metrovet", "./internal/word")
	if len(out) != 0 {
		t.Fatalf("metrovet reported findings on a clean package:\n%s", out)
	}
}
