//go:build !race

package netsim

// raceEnabled reports that the race detector is not active, so the
// zero-allocation gates run.
const raceEnabled = false
