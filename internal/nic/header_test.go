package nic

import (
	"bytes"
	"testing"
	"testing/quick"

	"metro/internal/word"
)

func TestBuildHeaderHW0Packing(t *testing.T) {
	// Figure-1 style: 1+1+2 bits pack into a single 8-bit route word.
	h := HeaderSpec{Width: 8, Stages: []StageHeader{
		{DirBits: 1}, {DirBits: 1}, {DirBits: 2},
	}}
	words := h.Build([]int{1, 0, 3})
	if len(words) != 1 {
		t.Fatalf("header = %v, want one word", words)
	}
	w := words[0]
	if w.Kind != word.Route || w.Bits != 4 {
		t.Fatalf("header word = %v, want ROUTE with 4 bits", w)
	}
	// Stage order: stage 0 digit in the low bits.
	if w.Payload != 0b1101 {
		t.Fatalf("payload = %#b, want 0b1101 (digits 1,0,3 low-first)", w.Payload)
	}
}

func TestBuildHeaderSplitsAtWordBoundary(t *testing.T) {
	// 3 stages of 3 bits on a 4-bit channel: each word fits only one
	// stage's digits (3+3 > 4), so three words result.
	h := HeaderSpec{Width: 4, Stages: []StageHeader{
		{DirBits: 3}, {DirBits: 3}, {DirBits: 3},
	}}
	words := h.Build([]int{5, 2, 7})
	if len(words) != 3 {
		t.Fatalf("header = %v, want three words", words)
	}
	for i, want := range []uint32{5, 2, 7} {
		if words[i].Payload != want || words[i].Bits != 3 {
			t.Fatalf("word %d = %v, want %d/3b", i, words[i], want)
		}
	}
}

func TestBuildHeaderHW2(t *testing.T) {
	h := HeaderSpec{Width: 8, Stages: []StageHeader{
		{DirBits: 2, HeaderWords: 2},
		{DirBits: 2, HeaderWords: 2},
	}}
	words := h.Build([]int{3, 1})
	if len(words) != 4 {
		t.Fatalf("header = %v, want 4 words (2 per stage)", words)
	}
	if words[0].Kind != word.Route || words[0].Payload != 3 {
		t.Fatalf("stage 0 route word = %v", words[0])
	}
	if words[1].Kind != word.HeaderPad {
		t.Fatalf("stage 0 pad = %v", words[1])
	}
	if words[2].Kind != word.Route || words[2].Payload != 1 {
		t.Fatalf("stage 1 route word = %v", words[2])
	}
}

func TestBuildHeaderMixedModes(t *testing.T) {
	h := HeaderSpec{Width: 8, Stages: []StageHeader{
		{DirBits: 2},                 // hw=0
		{DirBits: 3, HeaderWords: 1}, // hw=1
		{DirBits: 1},                 // hw=0
	}}
	words := h.Build([]int{2, 5, 1})
	// Stage 0 bits flush before the hw>=1 stage; stage 2 starts fresh.
	if len(words) != 3 {
		t.Fatalf("header = %v, want 3 words", words)
	}
	if words[0].Bits != 2 || words[0].Payload != 2 {
		t.Fatalf("word 0 = %v", words[0])
	}
	if words[1].Payload != 5 || words[1].Bits != 3 {
		t.Fatalf("word 1 = %v", words[1])
	}
	if words[2].Bits != 1 || words[2].Payload != 1 {
		t.Fatalf("word 2 = %v", words[2])
	}
}

// TestStripChainConsumesEverything verifies that stripping stage by stage
// consumes exactly the header, leaving the payload for the destination.
func TestStripChainConsumesEverything(t *testing.T) {
	specs := []HeaderSpec{
		{Width: 8, Stages: []StageHeader{{DirBits: 1}, {DirBits: 1}, {DirBits: 2}}},
		{Width: 4, Stages: []StageHeader{{DirBits: 2}, {DirBits: 2}, {DirBits: 2}}},
		{Width: 8, Stages: []StageHeader{
			{DirBits: 2, HeaderWords: 1}, {DirBits: 2, HeaderWords: 1}}},
		{Width: 8, Stages: []StageHeader{
			{DirBits: 2, HeaderWords: 3}, {DirBits: 3, HeaderWords: 3}}},
	}
	for si, h := range specs {
		digits := make([]int, len(h.Stages))
		for i, st := range h.Stages {
			digits[i] = (1 << uint(st.DirBits)) - 1 // max digit
		}
		payload := []word.Word{word.MakeData(0xA, h.Width), word.MakeData(0x5, h.Width)}
		stream := append(h.Build(digits), payload...)
		for s := range h.Stages {
			// The first word each stage sees must be a usable ROUTE word.
			if h.Stages[s].HeaderWords == 0 {
				first := firstContent(stream)
				if first.Kind != word.Route || int(first.Bits) < h.Stages[s].DirBits {
					t.Fatalf("spec %d stage %d sees %v", si, s, first)
				}
				dir := int(first.Payload) & ((1 << uint(h.Stages[s].DirBits)) - 1)
				if dir != digits[s] {
					t.Fatalf("spec %d stage %d decodes digit %d, want %d", si, s, dir, digits[s])
				}
			} else {
				if stream[0].Kind != word.Route {
					t.Fatalf("spec %d stage %d sees %v", si, s, stream[0])
				}
				if int(stream[0].Payload) != digits[s] {
					t.Fatalf("spec %d stage %d decodes %d, want %d", si, s, stream[0].Payload, digits[s])
				}
			}
			stream = h.StripStage(stream, s)
		}
		if len(stream) != len(payload) {
			t.Fatalf("spec %d: %d words after strip chain, want %d: %v", si, len(stream), len(payload), stream)
		}
		for i := range payload {
			if stream[i] != payload[i] {
				t.Fatalf("spec %d: payload corrupted: %v", si, stream)
			}
		}
	}
}

func firstContent(ws []word.Word) word.Word {
	for _, w := range ws {
		if !w.IsEmpty() {
			return w
		}
	}
	return word.Word{}
}

func TestExpectedStageChecksumsMatchManual(t *testing.T) {
	h := HeaderSpec{Width: 8, Stages: []StageHeader{{DirBits: 1}, {DirBits: 2}}}
	stream := append(h.Build([]int{1, 2}), word.MakeData(0x42, 8))
	sums := h.ExpectedStageChecksums(stream)
	if len(sums) != 2 {
		t.Fatalf("sums = %v", sums)
	}
	var ck0 word.Checksum
	for _, w := range stream {
		ck0.Add(w)
	}
	if sums[0] != ck0.Sum() {
		t.Fatalf("stage 0 sum %#x != %#x", sums[0], ck0.Sum())
	}
	var ck1 word.Checksum
	for _, w := range h.StripStage(stream, 0) {
		ck1.Add(w)
	}
	if sums[1] != ck1.Sum() {
		t.Fatalf("stage 1 sum %#x != %#x", sums[1], ck1.Sum())
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(data []byte, widthSeed uint8) bool {
		widths := []int{1, 2, 4, 8, 12, 16, 24, 32}
		w := widths[int(widthSeed)%len(widths)]
		words := PackBytes(data, w)
		back := UnpackBytes(words, w)
		// The payload must round-trip exactly; wide channels may append
		// zero padding up to one channel word's worth of bytes.
		if len(back) < len(data) || !bytes.Equal(back[:len(data)], data) {
			return false
		}
		pad := back[len(data):]
		if len(pad)*8 >= w {
			return false // more than one word of padding is a bug
		}
		for _, b := range pad {
			if b != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackBytesWidths(t *testing.T) {
	// w=4: each byte becomes two nibbles, low first.
	words := PackBytes([]byte{0xAB}, 4)
	if len(words) != 2 || words[0].Payload != 0xB || words[1].Payload != 0xA {
		t.Fatalf("nibble packing = %v", words)
	}
	// w=8: identity.
	words = PackBytes([]byte{0x12, 0x34}, 8)
	if len(words) != 2 || words[0].Payload != 0x12 {
		t.Fatalf("byte packing = %v", words)
	}
	// w=1: bits, LSB first.
	words = PackBytes([]byte{0b10000001}, 1)
	if len(words) != 8 || words[0].Payload != 1 || words[7].Payload != 1 || words[3].Payload != 0 {
		t.Fatalf("bit packing = %v", words)
	}
}

func TestHeaderValidate(t *testing.T) {
	good := HeaderSpec{Width: 8, Stages: []StageHeader{{DirBits: 2}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []HeaderSpec{
		{Width: 0},
		{Width: 40},
		{Width: 4, Stages: []StageHeader{{DirBits: 6}}},
		{Width: 4, Stages: []StageHeader{{DirBits: 2, HeaderWords: -1}}},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// TestHeaderStripChainProperty drives Build/StripStage over randomized
// stage configurations: the strip chain must decode every digit correctly
// at its own stage and consume exactly the header.
func TestHeaderStripChainProperty(t *testing.T) {
	f := func(widthSeed, stageSeed uint8, digitSeed uint32) bool {
		widths := []int{4, 6, 8, 12, 16}
		width := widths[int(widthSeed)%len(widths)]
		nStages := int(stageSeed)%5 + 1
		h := HeaderSpec{Width: width}
		digits := make([]int, nStages)
		seed := digitSeed
		next := func(n int) int {
			seed = seed*1664525 + 1013904223
			return int(seed>>16) % n
		}
		for s := 0; s < nStages; s++ {
			bits := next(3) + 1 // 1..3 dir bits
			if bits > width {
				bits = width
			}
			hw := 0
			if next(4) == 0 {
				hw = next(3) + 1 // occasional hw >= 1 stage
			}
			h.Stages = append(h.Stages, StageHeader{DirBits: bits, HeaderWords: hw})
			digits[s] = next(1 << uint(bits))
		}
		if h.Validate() != nil {
			return true
		}
		stream := append(h.Build(digits), word.MakeData(0x3, width))
		for s, st := range h.Stages {
			var got int
			if st.HeaderWords == 0 {
				first := firstContent(stream)
				if first.Kind != word.Route || int(first.Bits) < st.DirBits {
					return false
				}
				got = int(first.Payload) & ((1 << uint(st.DirBits)) - 1)
			} else {
				if len(stream) == 0 || stream[0].Kind != word.Route {
					return false
				}
				got = int(stream[0].Payload)
			}
			if got != digits[s] {
				return false
			}
			stream = h.StripStage(stream, s)
		}
		// Only the payload word remains.
		return len(stream) == 1 && stream[0].Kind == word.Data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestExpectedChecksumsChangeWithCorruption: flipping any payload bit of
// the sent stream must change the expected checksum of every stage that
// sees the word (the property fault localization relies on).
func TestExpectedChecksumsChangeWithCorruption(t *testing.T) {
	h := HeaderSpec{Width: 8, Stages: []StageHeader{{DirBits: 1}, {DirBits: 1}, {DirBits: 2}}}
	stream := append(h.Build([]int{1, 0, 2}),
		word.MakeData(0x10, 8), word.MakeData(0x20, 8))
	clean := h.ExpectedStageChecksums(stream)
	corrupt := append([]word.Word(nil), stream...)
	corrupt[len(corrupt)-1].Payload ^= 0x1
	dirty := h.ExpectedStageChecksums(corrupt)
	for s := range clean {
		if clean[s] == dirty[s] {
			t.Fatalf("stage %d checksum insensitive to payload corruption", s)
		}
	}
}
