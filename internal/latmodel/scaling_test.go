package latmodel

import "testing"

func TestScaledStageBits(t *testing.T) {
	cases := map[int][]int{
		8:   {1, 2},
		16:  {1, 1, 2},
		32:  {1, 1, 1, 2},
		256: {1, 1, 1, 1, 1, 1, 2},
	}
	for n, want := range cases {
		got := ScaledStageBits(n)
		if len(got) != len(want) {
			t.Fatalf("ScaledStageBits(%d) = %v, want %v", n, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ScaledStageBits(%d) = %v, want %v", n, got, want)
			}
		}
	}
}

func TestScaledStageBitsRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 4, 7, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ScaledStageBits(%d) should panic", n)
				}
			}()
			ScaledStageBits(n)
		}()
	}
}

func TestScalingIsLogarithmic(t *testing.T) {
	im := Table3()[0] // METROJR-ORBIT
	prev := im.Scaled(32).T2032()
	for n := 64; n <= 4096; n *= 2 {
		cur := im.Scaled(n).T2032()
		growth := cur - prev
		// Each doubling adds one stage: t_stg (50 ns) plus at most one
		// extra header word's transfer time.
		if growth < im.TStg() || growth > im.TStg()+8*im.TBit()+1 {
			t.Fatalf("N=%d: growth %.1f ns per doubling outside [t_stg, t_stg+word]", n, growth)
		}
		prev = cur
	}
	// 32x more endpoints costs well under 2x the latency.
	if r := im.Scaled(1024).T2032() / im.Scaled(32).T2032(); r > 1.6 {
		t.Fatalf("scaling 32->1024 endpoints multiplied latency by %.2f", r)
	}
}

func TestScaled32MatchesTable3(t *testing.T) {
	im := Table3()[0]
	if im.Scaled(32).T2032() != im.T2032() {
		t.Fatal("Scaled(32) should reproduce the Table 3 row")
	}
}
