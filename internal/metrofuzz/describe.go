package metrofuzz

import "fmt"

// Describe renders the one-line human summary of a scenario run — the
// "scenario:" line of metrofuzz's verbose output. It lives in the
// library (rather than cmd/metrofuzz) so that metroserve's stored
// result summaries are byte-identical to a direct `metrofuzz -replay`
// of the same spec: the e2e harness asserts that equality, which makes
// any drift between the service and the CLI a test failure.
func Describe(rep *Report) string {
	s := rep.Scenario
	topoName := s.Preset
	if topoName == "" {
		topoName = fmt.Sprintf("custom(%dep)", s.Custom.Endpoints)
	}
	return fmt.Sprintf("%s %v msgs=%d wk=%d faults=%d cas=%d: %d cycles, %d/%d delivered",
		topoName, s.Traffic, s.Messages, s.Workers, len(s.Faults), s.CascadeWidth,
		rep.Cycles, rep.Delivered, rep.Offered)
}

// Summary renders the full replay report for a completed run: the
// verbose scenario/spec header plus the verdict block, formatted
// exactly as `metrofuzz -replay -shrink=false '<spec>'` prints it.
// metroserve stores this as the job's summary; the e2e harness diffs it
// byte-for-byte against the CLI.
func (r *Report) Summary() string {
	out := fmt.Sprintf("scenario: %s\nspec:     %s\n", Describe(r), r.Spec)
	if !r.Failed() {
		return out + fmt.Sprintf("ok: all oracles passed (%d messages, %d cycles)\n", r.Offered, r.Cycles)
	}
	out += fmt.Sprintf("FAIL: %s\n", Describe(r))
	out += fmt.Sprintf("  spec: %s\n", r.Spec)
	for _, f := range r.Failures {
		out += fmt.Sprintf("  %s\n", f)
	}
	out += fmt.Sprintf("  repro: %s\n", r.Repro())
	return out
}
