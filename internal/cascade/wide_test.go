package cascade

import (
	"testing"

	"metro/internal/link"
	"metro/internal/word"
)

func wideFixture(t *testing.T, lanes int) (*WideChannel, *WideChannel, []*link.Link) {
	t.Helper()
	links := make([]*link.Link, lanes)
	aEnds := make([]*link.End, lanes)
	bEnds := make([]*link.End, lanes)
	for k := range links {
		links[k] = link.New("lane", 1)
		aEnds[k] = links[k].A()
		bEnds[k] = links[k].B()
	}
	return NewWideChannel(aEnds, 4), NewWideChannel(bEnds, 4), links
}

func stepAll(links []*link.Link) {
	for _, l := range links {
		l.Eval(0)
		l.Commit(0)
	}
}

func TestWideChannelDataRoundTrip(t *testing.T) {
	a, b, links := wideFixture(t, 2)
	if a.Lanes() != 2 {
		t.Fatalf("Lanes = %d", a.Lanes())
	}
	a.Send(word.Word{Kind: word.Data, Payload: 0xC5})
	stepAll(links)
	got := b.Recv()
	if got.Kind != word.Data || got.Payload != 0xC5 {
		t.Fatalf("wide recv = %v", got)
	}
	// Reverse direction.
	b.Send(word.Word{Kind: word.ChecksumWord, Payload: 0x3A})
	stepAll(links)
	back := a.Recv()
	if back.Kind != word.ChecksumWord || back.Payload != 0x3A {
		t.Fatalf("reverse wide recv = %v", back)
	}
}

func TestWideChannelControlReplication(t *testing.T) {
	a, b, links := wideFixture(t, 3)
	a.Send(word.MakeRoute(0b101, 3))
	stepAll(links)
	got := b.Recv()
	if got.Kind != word.Route || got.Payload != 0b101 || got.Bits != 3 {
		t.Fatalf("route through wide channel = %v", got)
	}
}

func TestWideChannelBCBIsAnyLane(t *testing.T) {
	a, b, links := wideFixture(t, 2)
	// Assert BCB on one lane only (as a single member's teardown would).
	links[1].B().SendBCB(true)
	_ = b
	stepAll(links)
	if !a.RecvBCB() {
		t.Fatal("single-lane BCB not visible on the wide channel")
	}
	stepAll(links)
	if a.RecvBCB() {
		t.Fatal("BCB stuck after deassertion")
	}
	// SendBCB drives every lane.
	b.SendBCB(true)
	stepAll(links)
	if !a.RecvBCB() {
		t.Fatal("wide SendBCB not visible")
	}
}

func TestWideChannelLockstepViolation(t *testing.T) {
	a, b, links := wideFixture(t, 2)
	_ = a
	// Drive the lanes inconsistently (a fault): merged word is Empty.
	links[0].A().Send(word.Word{Kind: word.Data, Payload: 1})
	links[1].A().Send(word.Word{Kind: word.DataIdle})
	stepAll(links)
	if got := b.Recv(); !got.IsEmpty() {
		t.Fatalf("lockstep violation merged to %v, want Empty", got)
	}
}

func TestWideChannelNeedsLanes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty lane list should panic")
		}
	}()
	NewWideChannel(nil, 4)
}
