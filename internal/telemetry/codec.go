package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The trace-file format is a versioned line-oriented text encoding:
//
//	mtr1 <events> <total>
//	<cycle> <KIND> <srckind>:<stage>:<index>:<lane> <msg> <a> <b>
//	...
//
// One line per event, fields space-separated, sources structured (no
// name parsing). The encoding is canonical — a given Trace has exactly
// one byte representation — which makes encoded traces the currency of
// the serial-vs-parallel identity tests: byte equality of files is
// event-for-event equality of streams.

const codecMagic = "mtr1"

// Encode writes t in the mtr1 text format.
func Encode(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %d %d\n", codecMagic, len(t.Events), t.Total)
	for _, e := range t.Events {
		fmt.Fprintf(bw, "%d %s %s:%d:%d:%d %d %d %d\n",
			e.Cycle, e.Kind, e.Src.Kind, e.Src.Stage, e.Src.Index, e.Src.Lane,
			e.Msg, e.A, e.B)
	}
	return bw.Flush()
}

// Decode parses an mtr1 stream back into a Trace.
func Decode(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		return Trace{}, fmt.Errorf("telemetry: empty trace input")
	}
	var n int
	var t Trace
	if _, err := fmt.Sscanf(sc.Text(), codecMagic+" %d %d", &n, &t.Total); err != nil {
		return Trace{}, fmt.Errorf("telemetry: bad trace header %q: %v", sc.Text(), err)
	}
	t.Events = make([]Event, 0, n)
	line := 1
	for sc.Scan() {
		line++
		e, err := decodeLine(sc.Text())
		if err != nil {
			return Trace{}, fmt.Errorf("telemetry: line %d: %v", line, err)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return Trace{}, err
	}
	if len(t.Events) != n {
		return Trace{}, fmt.Errorf("telemetry: header declares %d events, stream carries %d", n, len(t.Events))
	}
	return t, nil
}

func decodeLine(s string) (Event, error) {
	fields := strings.Fields(s)
	if len(fields) != 6 {
		return Event{}, fmt.Errorf("want 6 fields, got %d in %q", len(fields), s)
	}
	var e Event
	var err error
	if e.Cycle, err = strconv.ParseUint(fields[0], 10, 64); err != nil {
		return Event{}, fmt.Errorf("cycle: %v", err)
	}
	kind, ok := kindByName[fields[1]]
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q", fields[1])
	}
	e.Kind = kind
	if e.Src, err = decodeSource(fields[2]); err != nil {
		return Event{}, err
	}
	if e.Msg, err = strconv.ParseUint(fields[3], 10, 64); err != nil {
		return Event{}, fmt.Errorf("msg: %v", err)
	}
	a, err := strconv.ParseInt(fields[4], 10, 32)
	if err != nil {
		return Event{}, fmt.Errorf("a: %v", err)
	}
	b, err := strconv.ParseInt(fields[5], 10, 32)
	if err != nil {
		return Event{}, fmt.Errorf("b: %v", err)
	}
	e.A, e.B = int32(a), int32(b)
	return e, nil
}

func decodeSource(s string) (Source, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return Source{}, fmt.Errorf("bad source %q", s)
	}
	var src Source
	found := false
	for k, name := range sourceKindNames {
		if name == parts[0] {
			src.Kind = SourceKind(k)
			found = true
			break
		}
	}
	if !found {
		return Source{}, fmt.Errorf("unknown source kind %q", parts[0])
	}
	stage, err := strconv.ParseInt(parts[1], 10, 16)
	if err != nil {
		return Source{}, fmt.Errorf("stage: %v", err)
	}
	index, err := strconv.ParseInt(parts[2], 10, 32)
	if err != nil {
		return Source{}, fmt.Errorf("index: %v", err)
	}
	lane, err := strconv.ParseUint(parts[3], 10, 8)
	if err != nil {
		return Source{}, fmt.Errorf("lane: %v", err)
	}
	src.Stage, src.Index, src.Lane = int16(stage), int32(index), uint8(lane)
	return src, nil
}
