//go:build !race

package telemetry

// raceEnabled reports whether the race detector is compiled in; the
// allocation gates skip under it because instrumentation allocates.
const raceEnabled = false
