package analysis

import (
	"fmt"
	"go/ast"
	"strconv"
)

// mathRandAllowed lists the math/rand (and math/rand/v2) names that do
// NOT touch the package-global generator: constructors and types for
// explicitly seeded instances. Everything else on the package (Intn,
// Shuffle, Perm, Seed, ...) draws from global state whose sequence
// depends on whatever else has consumed it — nondeterministic across
// runs and across unrelated code changes.
var mathRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // rand/v2
	"NewChaCha8": true,
	"Rand":       true,
	"Source":     true,
	"Source64":   true,
	"Zipf":       true,
	"PCG":        true,
	"ChaCha8":    true,
}

// GlobalRand returns the no-global-rand analyzer. METRO cascade members
// must observe identical random bit streams (paper, Section 5.1), so all
// simulation randomness flows through internal/prng or an explicitly
// seeded *rand.Rand; the global math/rand generator and crypto/rand are
// both unreproducible.
func GlobalRand() *Analyzer {
	return &Analyzer{
		Name: "no-global-rand",
		Doc:  "forbid crypto/rand and global math/rand state in internal/ packages; randomness flows through internal/prng or seeded *rand.Rand instances",
		Run:  runGlobalRand,
	}
}

func runGlobalRand(p *Package) []Finding {
	if !isInternal(p.ImportPath) {
		return nil
	}
	var out []Finding
	for _, f := range p.AllFiles() {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "crypto/rand" {
				continue
			}
			pos := p.Fset.Position(imp.Pos())
			if p.suppressed("no-global-rand", "ignore", pos) {
				continue
			}
			out = append(out, Finding{
				Pos:  pos,
				Rule: "no-global-rand",
				Msg:  "crypto/rand is inherently unreproducible; simulation randomness must flow through internal/prng",
			})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path, ok := p.PkgNameOf(id)
			if !ok || (path != "math/rand" && path != "math/rand/v2") {
				return true
			}
			if mathRandAllowed[sel.Sel.Name] {
				return true
			}
			pos := p.Fset.Position(sel.Pos())
			if p.suppressed("no-global-rand", "ignore", pos) {
				return true
			}
			out = append(out, Finding{
				Pos:  pos,
				Rule: "no-global-rand",
				Msg: fmt.Sprintf("%s.%s uses the global math/rand generator, whose stream is not reproducible; use internal/prng or a seeded *rand.Rand",
					id.Name, sel.Sel.Name),
			})
			return true
		})
	}
	return out
}
