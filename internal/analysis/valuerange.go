package analysis

// Interprocedural value-range analysis and the three rules built on it:
//
//	truncating-conversion (MV010) — a narrowing integer conversion in
//	    Eval/Commit-reachable code must be proven lossless.
//	provable-bounds (MV011) — every slice/array index in
//	    Eval/Commit-reachable code must be proven >= 0 and < len.
//	width-contract (MV012) — width arguments at internal/word call
//	    sites proven within [1, 32], and every shift amount proven
//	    below the shifted operand's bit width.
//
// The analysis runs the AbsVal transfer functions (interval.go) over the
// bodies of every function reachable from the clock.Component Eval/Commit
// roots on the PR-6 call graph, flow-sensitively: assignments update an
// abstract environment, branch conditions refine it on each arm, and
// loops run to a small local fixpoint with widening. Alongside plain
// values the environment carries symbolic length facts — len(s) bounds
// per canonical path, "n == len(s)" and "i < len(s)" relations — which
// is what proves the `for i := 0; i < len(s); i++ { s[i] }` and
// `for i := range s` idioms.
//
// Across functions, parameter facts are joined over the argument values
// observed at static and CHA-resolved call sites inside the analyzed
// region, and result facts over return statements, to a bounded global
// fixpoint. Checks are recorded only in a final pass over the converged
// facts.
//
// Documented concessions (see docs/ANALYZERS.md): parameter facts cover
// only Eval/Commit-reachable call sites — the rules certify hot-path
// executions, not arbitrary callers; field-path value facts are dropped
// at every call, but length facts survive calls (lengths of long-lived
// buffers are set up at construction; the compiler-verified -bce gate is
// the cross-check); functions using goto or labeled branches degrade to
// flow-insensitive evaluation. On any concession the analysis loses
// precision, never soundness of what it does claim.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"math"
	"strings"
)

// TruncatingConversion returns the truncating-conversion analyzer: METRO's
// packed word format (masks, shifts, per-width checksums) makes silent
// integer truncation a real hazard, so every narrowing conversion on the
// per-cycle path must be proven lossless by the value-range analysis or
// carry a //metrovet:truncate <reason> valve.
func TruncatingConversion() *Analyzer {
	return &Analyzer{
		Name: "truncating-conversion",
		Doc:  "narrowing integer conversions reachable from Eval/Commit must be proven lossless by value-range analysis; annotate //metrovet:truncate <reason> when intended",
		Run: func(p *Package) []Finding {
			return valueRangeFindings(NewProgram([]*Package{p}), "truncating-conversion")
		},
		RunProgram: func(prog *Program) []Finding {
			return valueRangeFindings(prog, "truncating-conversion")
		},
	}
}

// ProvableBounds returns the provable-bounds analyzer: the contract the
// flattened struct-of-arrays kernel's adjacency indexing is held to.
// Every slice or array index reachable from Eval/Commit must be proven
// in bounds from propagated facts, so the compiler can eliminate the
// bounds check and a corrupted index can never panic mid-cycle.
func ProvableBounds() *Analyzer {
	return &Analyzer{
		Name: "provable-bounds",
		Doc:  "slice/array indexes reachable from Eval/Commit must be proven in bounds by value-range analysis; annotate //metrovet:bounds <reason> when externally guaranteed",
		Run: func(p *Package) []Finding {
			return valueRangeFindings(NewProgram([]*Package{p}), "provable-bounds")
		},
		RunProgram: func(prog *Program) []Finding {
			return valueRangeFindings(prog, "provable-bounds")
		},
	}
}

// WidthContract returns the width-contract analyzer: channel widths in
// METRO are 1..32 bits, and internal/word's Mask/checksum helpers
// silently saturate or zero outside that range. Width arguments at word
// call sites must be proven within [1, 32], and shift amounts must be
// proven below the shifted operand's bit width (an over-wide shift
// zeroes the value without any runtime signal).
func WidthContract() *Analyzer {
	return &Analyzer{
		Name: "width-contract",
		Doc:  "word.Mask/checksum width arguments proven within [1,32] and shift amounts proven below the operand width on Eval/Commit paths; annotate //metrovet:width <reason> when validated elsewhere",
		Run: func(p *Package) []Finding {
			return valueRangeFindings(NewProgram([]*Package{p}), "width-contract")
		},
		RunProgram: func(prog *Program) []Finding {
			return valueRangeFindings(prog, "width-contract")
		},
	}
}

// wordWidthArgs maps internal/word functions to the position of their
// width parameter (the [1, 32] contract of MV012).
var wordWidthArgs = map[string]int{
	"Mask":           0,
	"MakeData":       1,
	"ChecksumWords":  0,
	"SplitChecksum":  1,
	"AppendChecksum": 2,
	"JoinChecksum":   1,
}

// isWordPackage reports whether an import path is the packed-word
// package carrying the width contract (suffix match so in-memory
// fixtures can model it).
func isWordPackage(path string) bool {
	return path == "metro/internal/word" || strings.HasSuffix(path, "/internal/word")
}

// valueRange is the shared result of one analysis run over a Program,
// cached on the Program so the three rules compute it once.
type valueRange struct {
	findings map[string][]Finding
}

// valueRangeFindings returns one rule's findings, computing and caching
// the shared analysis on first use.
func valueRangeFindings(prog *Program, rule string) []Finding {
	if prog.vr == nil {
		prog.vr = computeValueRange(prog)
	}
	return append([]Finding(nil), prog.vr.findings[rule]...)
}

// vrSummary is one function's interprocedural summary.
type vrSummary struct {
	// params joins the abstract argument values observed at analyzed
	// call sites, by parameter index (receivers excluded). Bot until a
	// call site contributes.
	params []AbsVal
	// paramsTop marks functions whose callers cannot all be seen: roots,
	// reference-taken functions, variadic or arity-mismatched calls.
	paramsTop bool
	// results joins the return values seen so far, by result index.
	results []AbsVal
}

// computeValueRange runs the whole analysis: reachability, the bounded
// interprocedural fixpoint, and the final recording pass.
func computeValueRange(prog *Program) *valueRange {
	vr := &valueRange{findings: map[string][]Finding{}}
	roots := componentRoots(prog, nil, "Eval", "Commit")
	if len(roots) == 0 {
		return vr
	}
	reached := prog.CallGraph().Reachable(roots, nil)
	nodes := reachedNodes(reached)

	summaries := map[*FuncNode]*vrSummary{}
	for _, n := range nodes {
		summaries[n] = &vrSummary{}
	}
	for _, r := range roots {
		if s := summaries[r.Node]; s != nil {
			s.paramsTop = true
		}
	}
	// A function whose reference is taken can be called with anything
	// by whoever holds the reference.
	for _, n := range nodes {
		for _, e := range prog.CallGraph().Edges[n] {
			if e.Kind == EdgeRef {
				if s := summaries[e.Callee]; s != nil {
					s.paramsTop = true
				}
			}
		}
	}

	const maxPasses = 6
	converged := false
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, n := range nodes {
			ev := &vrEval{prog: prog, summaries: summaries, node: n, sum: summaries[n]}
			ev.run()
			if ev.changed {
				changed = true
			}
		}
		if !changed {
			converged = true
			break
		}
	}
	if !converged {
		// The bounded fixpoint did not settle: drop to the sound floor
		// (unknown params everywhere) and re-evaluate results once so the
		// recording pass never reads an under-approximation.
		for _, s := range summaries {
			s.paramsTop = true
			s.results = nil
		}
		for _, n := range nodes {
			ev := &vrEval{prog: prog, summaries: summaries, node: n, sum: summaries[n]}
			ev.run()
		}
	}

	// Recording pass over the converged facts.
	seen := map[string]bool{}
	for _, n := range nodes {
		info := reached[n]
		ev := &vrEval{
			prog: prog, summaries: summaries, node: n, sum: summaries[n],
			root: info.Root,
			record: func(rule, kind string, pos token.Pos, msg string) {
				p := n.Pkg
				position := p.Fset.Position(pos)
				dedup := fmt.Sprintf("%s|%s:%d:%d|%s", rule, position.Filename, position.Line, position.Column, msg)
				if seen[dedup] {
					return
				}
				seen[dedup] = true
				if p.suppressed(rule, kind, position) {
					return
				}
				vr.findings[rule] = append(vr.findings[rule], Finding{Pos: position, Rule: rule, Msg: msg})
			},
		}
		ev.run()
	}
	for rule := range vr.findings {
		SortFindings(vr.findings[rule])
	}
	return vr
}

// vrEnv is the flow-sensitive abstract environment: values, length
// facts, and symbolic relations, all keyed by canonical expression path
// ("i", "p.injHead", "r.fwd").
type vrEnv struct {
	// vals abstracts integer-valued paths; a missing key is top.
	vals map[string]AbsVal
	// lens bounds len(path) for slice/string paths; missing is [0, +inf].
	lens map[string]AbsVal
	// symLen records paths holding exactly len(target): symLen["n"] = "s"
	// after n := len(s). A slice-typed key means the key's own length
	// equals len(target): symLen["out"] = "s" after out := make(T, len(s)).
	symLen map[string]string
	// lt records "path < len(target)" relations: lt["i"]["s"] after the
	// i < len(s) branch or inside for i := range s.
	lt map[string]map[string]bool
}

func newEnv() *vrEnv {
	return &vrEnv{
		vals:   map[string]AbsVal{},
		lens:   map[string]AbsVal{},
		symLen: map[string]string{},
		lt:     map[string]map[string]bool{},
	}
}

func (e *vrEnv) clone() *vrEnv {
	out := newEnv()
	for k, v := range e.vals {
		out.vals[k] = v
	}
	for k, v := range e.lens {
		out.lens[k] = v
	}
	for k, v := range e.symLen {
		out.symLen[k] = v
	}
	for k, set := range e.lt {
		ns := map[string]bool{}
		for t := range set {
			ns[t] = true
		}
		out.lt[k] = ns
	}
	return out
}

// join merges two environments pointwise; facts present on only one side
// are dropped (the other side knows nothing). nil environments mean
// "unreachable" and act as the identity.
func joinEnv(a, b *vrEnv) *vrEnv {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := newEnv()
	for k, av := range a.vals {
		if bv, ok := b.vals[k]; ok {
			out.vals[k] = av.Join(bv)
		}
	}
	for k, av := range a.lens {
		if bv, ok := b.lens[k]; ok {
			out.lens[k] = av.Join(bv)
		}
	}
	for k, at := range a.symLen {
		if bt, ok := b.symLen[k]; ok && at == bt {
			out.symLen[k] = at
		}
	}
	for k, aset := range a.lt {
		bset := b.lt[k]
		if bset == nil {
			continue
		}
		for t := range aset {
			if bset[t] {
				if out.lt[k] == nil {
					out.lt[k] = map[string]bool{}
				}
				out.lt[k][t] = true
			}
		}
	}
	return out
}

// equalEnv reports whether two environments carry identical facts (the
// loop-fixpoint termination test).
func equalEnv(a, b *vrEnv) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.vals) != len(b.vals) || len(a.lens) != len(b.lens) ||
		len(a.symLen) != len(b.symLen) || len(a.lt) != len(b.lt) {
		return false
	}
	for k, v := range a.vals {
		if b.vals[k] != v {
			return false
		}
	}
	for k, v := range a.lens {
		if b.lens[k] != v {
			return false
		}
	}
	for k, v := range a.symLen {
		if b.symLen[k] != v {
			return false
		}
	}
	for k, set := range a.lt {
		bset := b.lt[k]
		if len(bset) != len(set) {
			return false
		}
		for t := range set {
			if !bset[t] {
				return false
			}
		}
	}
	return true
}

// widenEnv widens a toward b: facts that grew lose the unstable bound,
// so loop fixpoints terminate in a bounded number of iterations.
func widenEnv(a, b *vrEnv) *vrEnv {
	j := joinEnv(a, b)
	if a == nil || j == nil {
		return j
	}
	for k, jv := range j.vals {
		av, ok := a.vals[k]
		if !ok {
			continue
		}
		if jv.Wide || av.Wide || jv.Bot {
			continue
		}
		if jv.Lo < av.Lo {
			jv.Lo = math.MinInt64
		}
		if jv.Hi > av.Hi {
			jv.Hi = math.MaxInt64
		}
		j.vals[k] = jv.normalize()
	}
	for k, jv := range j.lens {
		av, ok := a.lens[k]
		if !ok {
			continue
		}
		if jv.Wide || av.Wide || jv.Bot {
			continue
		}
		if jv.Lo < av.Lo {
			jv.Lo = 0
		}
		if jv.Hi > av.Hi {
			jv.Hi = math.MaxInt64
		}
		j.lens[k] = jv.normalize()
	}
	return j
}

// killPath removes every fact about path and any extension of it
// (assigning to p kills p.injHead too), including relations that name
// it as a length target.
func (e *vrEnv) killPath(path string) {
	drop := func(k string) bool {
		return k == path || strings.HasPrefix(k, path+".")
	}
	for k := range e.vals {
		if drop(k) {
			delete(e.vals, k)
		}
	}
	for k := range e.lens {
		if drop(k) {
			delete(e.lens, k)
		}
	}
	for k, t := range e.symLen {
		if drop(k) || drop(t) {
			delete(e.symLen, k)
		}
	}
	for k, set := range e.lt {
		if drop(k) {
			delete(e.lt, k)
			continue
		}
		for t := range set {
			if drop(t) {
				delete(set, t)
			}
		}
		if len(set) == 0 {
			delete(e.lt, k)
		}
	}
}

// killOrder removes the ordering facts of path (i++ invalidates
// i < len(s)) without touching its interval or length facts.
func (e *vrEnv) killOrder(path string) {
	delete(e.symLen, path)
	delete(e.lt, path)
}

// killFields drops value facts on field paths (those containing a dot)
// and on address-taken locals: a call can mutate anything reachable
// through a pointer. Length facts survive (documented concession).
func (e *vrEnv) killFields(addrTaken map[string]bool) {
	for k := range e.vals {
		if strings.Contains(k, ".") || addrTaken[k] {
			delete(e.vals, k)
		}
	}
	for k, t := range e.symLen {
		if strings.Contains(k, ".") || addrTaken[k] {
			delete(e.symLen, k)
			_ = t
		}
	}
	for k := range e.lt {
		if strings.Contains(k, ".") || addrTaken[k] {
			delete(e.lt, k)
		}
	}
}

// flowOut is the result of executing a statement: the fall-through
// environment (nil when control never falls through) plus the
// environments flowing to the nearest enclosing break and continue.
type flowOut struct {
	env  *vrEnv
	brk  []*vrEnv
	cont []*vrEnv
}

func fall(env *vrEnv) flowOut { return flowOut{env: env} }

// vrEval evaluates one function body against the current summaries.
type vrEval struct {
	prog      *Program
	summaries map[*FuncNode]*vrSummary
	node      *FuncNode
	sum       *vrSummary
	// root labels finding messages; empty outside the recording pass.
	root string
	// record, when set, receives check outcomes (rule, valve kind, pos,
	// message). nil during the fixpoint passes.
	record func(rule, kind string, pos token.Pos, msg string)
	// mute suppresses recording during loop-fixpoint iterations.
	mute int
	// changed reports whether this evaluation grew any summary.
	changed bool
	// addrTaken marks local paths whose address escapes in this body.
	addrTaken map[string]bool
	// degraded marks goto/labeled-branch bodies: flow-insensitive walk.
	degraded bool
	// resultPaths maps named result paths for bare returns.
	resultNames []string
}

func (ev *vrEval) pkg() *Package { return ev.node.Pkg }

// run evaluates the node's body once.
func (ev *vrEval) run() {
	fd := ev.node.Decl
	if fd.Body == nil || ev.pkg().Types == nil || ev.pkg().Info == nil {
		return
	}
	ev.addrTaken = map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if path := canonPath(e.X); path != "" {
					ev.addrTaken[path] = true
				}
			}
		case *ast.BranchStmt:
			if e.Tok == token.GOTO || e.Label != nil {
				ev.degraded = true
			}
		}
		return true
	})

	env := newEnv()
	if fd.Type.Params != nil {
		idx := 0
		for _, field := range fd.Type.Params.List {
			names := field.Names
			if len(names) == 0 {
				idx++
				continue
			}
			for _, name := range names {
				if name.Name != "_" {
					if it, ok := typeShape(ev.pkg().TypeOf(name)); ok {
						v := rangeOf(it)
						if !ev.sum.paramsTop && idx < len(ev.sum.params) {
							pv := ev.sum.params[idx]
							if !pv.Bot {
								v = pv.Meet(v)
							}
						}
						env.vals[name.Name] = v
					}
				}
				idx++
			}
		}
	}
	if fd.Type.Results != nil {
		ev.resultNames = nil
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				ev.resultNames = append(ev.resultNames, name.Name)
				if _, ok := typeShape(ev.pkg().TypeOf(name)); ok {
					env.vals[name.Name] = absConst(0)
				}
			}
		}
	}

	if ev.degraded {
		// goto or labeled branches: no reliable flow order. Walk every
		// expression with an empty environment so constant-provable
		// checks still record and call sites still feed summaries.
		top := newEnv()
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if expr, ok := n.(ast.Expr); ok {
				ev.eval(expr, top)
				return false
			}
			return true
		})
		return
	}

	ev.execBlock(fd.Body, env)
}

// joinResult feeds one return value into the summary, tracking growth.
func (ev *vrEval) joinResult(i int, v AbsVal) {
	for len(ev.sum.results) <= i {
		ev.sum.results = append(ev.sum.results, absBottom())
	}
	next := ev.sum.results[i].Join(v)
	if next != ev.sum.results[i] {
		ev.sum.results[i] = next
		ev.changed = true
	}
}

// joinParamFact feeds one observed argument into a callee summary.
func (ev *vrEval) joinParamFact(callee *FuncNode, i int, v AbsVal) {
	s := ev.summaries[callee]
	if s == nil || s.paramsTop {
		return
	}
	for len(s.params) <= i {
		s.params = append(s.params, absBottom())
	}
	next := s.params[i].Join(v)
	if next != s.params[i] {
		s.params[i] = next
		ev.changed = true
	}
}

// markParamsTop degrades a callee to unknown parameters.
func (ev *vrEval) markParamsTop(callee *FuncNode) {
	s := ev.summaries[callee]
	if s != nil && !s.paramsTop {
		s.paramsTop = true
		ev.changed = true
	}
}

// execBlock runs a statement list.
func (ev *vrEval) execBlock(b *ast.BlockStmt, env *vrEnv) flowOut {
	out := fall(env)
	for _, s := range b.List {
		if out.env == nil {
			break
		}
		r := ev.execStmt(s, out.env)
		out.env = r.env
		out.brk = append(out.brk, r.brk...)
		out.cont = append(out.cont, r.cont...)
	}
	return out
}

// execStmt runs one statement.
func (ev *vrEval) execStmt(s ast.Stmt, env *vrEnv) flowOut {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return ev.execBlock(st, env)
	case *ast.ExprStmt:
		ev.eval(st.X, env)
		ev.callEffects(st.X, env)
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok &&
			calleeBuiltin(ev.pkg(), call) == "panic" {
			// panic never falls through, so an if-guarded panic refines
			// the code after the if with the guard's negation — the
			// validate-or-die idiom (if w < 1 || w > 32 { panic(...) }).
			return flowOut{}
		}
		return fall(env)
	case *ast.AssignStmt:
		return fall(ev.execAssign(st, env))
	case *ast.IncDecStmt:
		return fall(ev.execIncDec(st, env))
	case *ast.DeclStmt:
		return fall(ev.execDecl(st, env))
	case *ast.IfStmt:
		return ev.execIf(st, env)
	case *ast.ForStmt:
		return fall(ev.execFor(st, env))
	case *ast.RangeStmt:
		return fall(ev.execRange(st, env))
	case *ast.SwitchStmt:
		return ev.execSwitch(st, env)
	case *ast.TypeSwitchStmt:
		return ev.execTypeSwitch(st, env)
	case *ast.SelectStmt:
		return ev.execSelect(st, env)
	case *ast.ReturnStmt:
		ev.execReturn(st, env)
		return flowOut{}
	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			return flowOut{brk: []*vrEnv{env}}
		case token.CONTINUE:
			return flowOut{cont: []*vrEnv{env}}
		}
		// goto / fallthrough outside a switch clause: treated by the
		// degraded path; never reached here.
		return flowOut{}
	case *ast.LabeledStmt:
		// Labels without labeled branches (degraded mode catches the
		// rest) are plain statements.
		return ev.execStmt(st.Stmt, env)
	case *ast.DeferStmt:
		ev.eval(st.Call, env)
		ev.callEffects(st.Call, env)
		return fall(env)
	case *ast.GoStmt:
		ev.eval(st.Call, env)
		ev.callEffects(st.Call, env)
		return fall(env)
	case *ast.SendStmt:
		ev.eval(st.Chan, env)
		ev.eval(st.Value, env)
		return fall(env)
	case *ast.EmptyStmt:
		return fall(env)
	}
	return fall(env)
}

// callEffects applies the call-boundary concession after any statement
// that evaluates a call for effect: field facts and address-taken
// locals may have changed.
func (ev *vrEval) callEffects(expr ast.Expr, env *vrEnv) {
	if containsCall(expr) {
		env.killFields(ev.addrTaken)
	}
}

// containsCall reports whether expr contains any function call (method
// calls included; conversions and builtins excluded where detectable is
// not worth the precision — they count as calls too, conservatively).
func containsCall(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// execAssign handles =, :=, and the compound assignment operators.
func (ev *vrEval) execAssign(st *ast.AssignStmt, env *vrEnv) *vrEnv {
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(st.Lhs) == len(st.Rhs) {
			// Evaluate all RHS first (Go semantics), then bind.
			vals := make([]AbsVal, len(st.Rhs))
			for i, r := range st.Rhs {
				vals[i] = ev.eval(r, env)
			}
			for _, r := range st.Rhs {
				ev.callEffects(r, env)
			}
			for i := range st.Lhs {
				ev.bind(env, st.Lhs[i], st.Rhs[i], vals[i])
			}
			return env
		}
		// Tuple assignment from a call, map read, or type assertion.
		for _, r := range st.Rhs {
			ev.eval(r, env)
			ev.callEffects(r, env)
		}
		var callee *FuncNode
		if len(st.Rhs) == 1 {
			if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
				callee = ev.staticCallee(call)
			}
		}
		for i, l := range st.Lhs {
			path := canonPath(l)
			if path == "" {
				ev.eval(l, env)
				if _, isIndex := ast.Unparen(l).(*ast.IndexExpr); !isIndex {
					env.killFields(ev.addrTaken)
				}
				continue
			}
			env.killPath(path)
			ev.invalidateDependents(env, path)
			if callee != nil {
				if v, ok := ev.calleeResult(callee, i); ok {
					if it, okt := typeShape(ev.pkg().TypeOf(l)); okt {
						env.vals[path] = v.Meet(rangeOf(it))
					}
				}
			}
		}
		return env
	default:
		// Compound op=: lhs = lhs OP rhs.
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return env
		}
		l, r := st.Lhs[0], st.Rhs[0]
		lv := ev.eval(l, env)
		rv := ev.eval(r, env)
		ev.callEffects(r, env)
		op, ok := assignOp(st.Tok)
		if !ok {
			return env
		}
		if op == token.SHL || op == token.SHR {
			ev.checkShift(st.TokPos, l, r, rv, env)
		}
		v := applyBinary(op, lv, rv)
		if it, okt := typeShape(ev.pkg().TypeOf(l)); okt {
			v = v.clamp(it)
		} else {
			v = absAny()
		}
		if path := canonPath(l); path != "" {
			env.killOrder(path)
			ev.invalidateDependents(env, path)
			env.vals[path] = v
		}
		return env
	}
}

// bind assigns rhs (already evaluated to val) to the lhs expression,
// maintaining value, length, and symbolic facts.
func (ev *vrEval) bind(env *vrEnv, lhs, rhs ast.Expr, val AbsVal) {
	path := canonPath(lhs)
	if path == "" {
		// Assignment through an index, dereference, or other opaque
		// lvalue. Evaluate the target expression itself — a write to
		// s[i] is a bounds-check site like a read — then drop the facts
		// it can alias: element writes touch no canonical path, but a
		// write through a pointer can change any field.
		ev.eval(lhs, env)
		if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); !isIndex {
			env.killFields(ev.addrTaken)
		}
		return
	}
	// Derive length and alias facts from the RHS against the
	// pre-assignment environment — Go evaluates the RHS first, so
	// s = append(s, x) must read len(s) before the binding clobbers it —
	// then kill the old facts and apply the new ones.
	var newLen *AbsVal
	var newSymLen string
	var newLt map[string]bool
	var newArgSym string // int path that now equals len(path)
	setLen := func(v AbsVal) { v = lenBound(v); newLen = &v }

	r := ast.Unparen(rhs)
	switch e := r.(type) {
	case *ast.CallExpr:
		switch calleeBuiltin(ev.pkg(), e) {
		case "make":
			// make([]T, n) / make([]T, n, c): the new length is n. When
			// n is len(src) (directly or via a symLen variable), also
			// record the slice-length alias len(path) == len(src), so an
			// index proven below len(src) proves indexing path too.
			if len(e.Args) >= 2 {
				setLen(ev.evalQuiet(e.Args[1], env))
				if t := ev.lenTarget(e.Args[1], env); t != "" && t != path {
					newSymLen = t
				}
				// The size variable itself now equals len(path):
				// p := make([]byte, n) establishes n == len(p), so
				// p[n-1] and i < n-1 loops become provable.
				if t := canonPath(e.Args[1]); t != "" && t != path && t != "_" {
					if _, isInt := typeShape(ev.pkg().TypeOf(e.Args[1])); isInt {
						newArgSym = t
					}
				}
			}
		case "len":
			if len(e.Args) == 1 {
				if target := canonPath(e.Args[0]); target != "" && target != path {
					newSymLen = target
				}
			}
		case "append":
			// s = append(s, x...) grows the source length.
			if len(e.Args) >= 1 {
				src := canonPath(e.Args[0])
				base := AbsVal{Lo: 0, Hi: math.MaxInt64}
				if src != "" {
					if lv, ok := env.lens[src]; ok {
						base = lv
					}
				}
				if e.Ellipsis.IsValid() {
					setLen(AbsVal{Lo: base.Lo, Hi: math.MaxInt64})
				} else {
					setLen(absAdd(base, absConst(int64(len(e.Args)-1))))
				}
			}
		}
	case *ast.SliceExpr:
		// s2 = s[a:b]: len(s2) = b - a (with the defaults filled in).
		if e.Slice3 {
			break
		}
		src := canonPath(e.X)
		var lo AbsVal = absConst(0)
		if e.Low != nil {
			lo = ev.evalQuiet(e.Low, env)
		}
		var hi AbsVal
		switch {
		case e.High != nil:
			hi = ev.evalQuiet(e.High, env)
		case src != "":
			if lv, ok := env.lens[src]; ok {
				hi = lv
			} else if n, ok := arrayLenOf(ev.pkg().TypeOf(e.X)); ok {
				hi = absConst(n)
			} else {
				hi = AbsVal{Lo: 0, Hi: math.MaxInt64}
			}
		default:
			hi = AbsVal{Lo: 0, Hi: math.MaxInt64}
		}
		setLen(absSub(hi, lo))
	case *ast.CompositeLit:
		// s = []T{...}: exact length (no spread elements in Go).
		if _, ok := ev.pkg().TypeOf(e).Underlying().(*types.Slice); ok {
			setLen(absConst(int64(len(e.Elts))))
		}
	case *ast.Ident, *ast.SelectorExpr:
		// Alias: copy length and relation facts from the source path.
		if src := canonPath(r); src != "" {
			if lv, ok := env.lens[src]; ok {
				setLen(lv)
			}
			if t, ok := env.symLen[src]; ok && t != path {
				newSymLen = t
			}
			if set, ok := env.lt[src]; ok {
				ns := map[string]bool{}
				for t := range set {
					if t != path {
						ns[t] = true
					}
				}
				if len(ns) > 0 {
					newLt = ns
				}
			}
		}
	}

	env.killPath(path)
	ev.invalidateDependents(env, path)
	if path == "_" {
		return
	}
	if it, isInt := typeShape(ev.pkg().TypeOf(lhs)); isInt {
		env.vals[path] = val.Meet(rangeOf(it))
	}
	if newLen != nil {
		env.lens[path] = *newLen
	}
	if newSymLen != "" {
		env.symLen[path] = newSymLen
	}
	if newLt != nil {
		env.lt[path] = newLt
	}
	if newArgSym != "" {
		env.symLen[newArgSym] = path
	}
}

// invalidateDependents drops relations that mention path as their length
// target: after s changes, i < len(s) no longer holds.
func (ev *vrEval) invalidateDependents(env *vrEnv, path string) {
	for k, t := range env.symLen {
		if t == path || strings.HasPrefix(t, path+".") {
			delete(env.symLen, k)
		}
	}
	for k, set := range env.lt {
		for t := range set {
			if t == path || strings.HasPrefix(t, path+".") {
				delete(set, t)
			}
		}
		if len(set) == 0 {
			delete(env.lt, k)
		}
	}
}

// lenBound clamps a computed length into the valid [0, +inf] range.
func lenBound(v AbsVal) AbsVal {
	return v.Meet(AbsVal{Lo: 0, Hi: math.MaxInt64})
}

// execIncDec handles x++ / x--.
func (ev *vrEval) execIncDec(st *ast.IncDecStmt, env *vrEnv) *vrEnv {
	v := ev.eval(st.X, env)
	one := absConst(1)
	var next AbsVal
	if st.Tok == token.INC {
		next = absAdd(v, one)
	} else {
		next = absSub(v, one)
	}
	if it, ok := typeShape(ev.pkg().TypeOf(st.X)); ok {
		next = next.clamp(it)
	}
	if path := canonPath(st.X); path != "" {
		env.killOrder(path)
		ev.invalidateDependents(env, path)
		env.vals[path] = next
	}
	return env
}

// execDecl handles var declarations (zero values included: var x int
// really is 0).
func (ev *vrEval) execDecl(st *ast.DeclStmt, env *vrEnv) *vrEnv {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return env
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == len(vs.Names) {
			for i, name := range vs.Names {
				v := ev.eval(vs.Values[i], env)
				ev.callEffects(vs.Values[i], env)
				ev.bind(env, name, vs.Values[i], v)
			}
			continue
		}
		for _, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			env.killPath(name.Name)
			if _, ok := typeShape(ev.pkg().TypeOf(name)); ok && len(vs.Values) == 0 {
				env.vals[name.Name] = absConst(0)
			}
		}
		for _, v := range vs.Values {
			ev.eval(v, env)
			ev.callEffects(v, env)
		}
	}
	return env
}

// execIf runs an if/else with branch refinement.
func (ev *vrEval) execIf(st *ast.IfStmt, env *vrEnv) flowOut {
	if st.Init != nil {
		r := ev.execStmt(st.Init, env)
		env = r.env
		if env == nil {
			return flowOut{}
		}
	}
	ev.eval(st.Cond, env)
	ev.callEffects(st.Cond, env)
	thenEnv, elseEnv := ev.refine(st.Cond, env)

	var thenOut flowOut
	if thenEnv != nil {
		thenOut = ev.execBlock(st.Body, thenEnv)
	}
	var elseOut flowOut
	if st.Else != nil {
		if elseEnv != nil {
			elseOut = ev.execStmt(st.Else, elseEnv)
		}
	} else {
		elseOut = fall(elseEnv)
	}
	return flowOut{
		env:  joinEnv(thenOut.env, elseOut.env),
		brk:  append(thenOut.brk, elseOut.brk...),
		cont: append(thenOut.cont, elseOut.cont...),
	}
}

// maxLoopIter bounds the loop fixpoint; widening kicks in only on the
// final iterations so small stable bounds (a shift accumulator capped
// by a break) get a chance to converge exactly before unstable bounds
// blow to infinity.
const maxLoopIter = 6

// execFor runs a for loop to a local fixpoint, then (in recording mode)
// one recorded pass over the converged head.
func (ev *vrEval) execFor(st *ast.ForStmt, env *vrEnv) *vrEnv {
	if st.Init != nil {
		r := ev.execStmt(st.Init, env)
		env = r.env
		if env == nil {
			return nil
		}
	}
	body := func(head *vrEnv) (after *vrEnv, exit *vrEnv) {
		var condT, condF *vrEnv
		if st.Cond != nil {
			ev.eval(st.Cond, head)
			ev.callEffects(st.Cond, head)
			condT, condF = ev.refine(st.Cond, head)
		} else {
			condT, condF = head, nil
		}
		var out flowOut
		if condT != nil {
			out = ev.execBlock(st.Body, condT)
		}
		exit = condF
		for _, b := range out.brk {
			exit = joinEnv(exit, b)
		}
		after = out.env
		for _, c := range out.cont {
			after = joinEnv(after, c)
		}
		if after != nil && st.Post != nil {
			r := ev.execStmt(st.Post, after)
			after = r.env
		}
		return after, exit
	}
	return ev.loopFixpoint(env, body)
}

// execRange runs a range loop. Only slice/array/string/int ranges
// establish facts about the key variable; map and channel ranges run
// the body with no extra facts.
func (ev *vrEval) execRange(st *ast.RangeStmt, env *vrEnv) *vrEnv {
	ev.eval(st.X, env)
	ev.callEffects(st.X, env)
	xt := ev.pkg().TypeOf(st.X)
	srcPath := canonPath(st.X)

	// The key bound: [0, len-1] where the length is whatever is known.
	var keyBound AbsVal
	var ltTarget string
	switch {
	case xt != nil && isSliceOrString(xt):
		hi := int64(math.MaxInt64)
		if srcPath != "" {
			if lv, ok := env.lens[srcPath]; ok && !lv.Wide && lv.Hi < math.MaxInt64 {
				hi = lv.Hi - 1
			}
			ltTarget = srcPath
		}
		keyBound = AbsVal{Lo: 0, Hi: max64(hi, 0)}
	default:
		if n, ok := arrayLenOf(xt); ok {
			keyBound = AbsVal{Lo: 0, Hi: max64(n-1, 0)}
		} else if it, ok := typeShape(xt); ok {
			// range over an integer n: keys are [0, n-1].
			_ = it
			n := ev.eval(st.X, env)
			if !n.Wide && n.Hi > math.MinInt64 {
				keyBound = AbsVal{Lo: 0, Hi: max64(n.Hi-1, 0)}
			} else {
				keyBound = AbsVal{Lo: 0, Hi: math.MaxInt64}
			}
		} else {
			keyBound = AbsVal{Lo: 0, Hi: math.MaxInt64}
		}
	}

	keyPath := ""
	if st.Key != nil && st.Tok != token.ILLEGAL {
		keyPath = canonPath(st.Key)
	}
	valPath := ""
	if st.Value != nil {
		valPath = canonPath(st.Value)
	}

	body := func(head *vrEnv) (after *vrEnv, exit *vrEnv) {
		iter := head.clone()
		if keyPath != "" && keyPath != "_" {
			iter.killPath(keyPath)
			if _, ok := typeShape(ev.pkg().TypeOf(st.Key)); ok {
				iter.vals[keyPath] = keyBound
			}
			if ltTarget != "" {
				iter.lt[keyPath] = map[string]bool{ltTarget: true}
			}
		}
		if valPath != "" && valPath != "_" {
			iter.killPath(valPath)
			if it, ok := typeShape(ev.pkg().TypeOf(st.Value)); ok {
				iter.vals[valPath] = rangeOf(it)
			}
		}
		out := ev.execBlock(st.Body, iter)
		exit = head // the loop may execute zero times
		for _, b := range out.brk {
			exit = joinEnv(exit, b)
		}
		after = out.env
		for _, c := range out.cont {
			after = joinEnv(after, c)
		}
		return after, exit
	}
	return ev.loopFixpoint(env, body)
}

// loopFixpoint iterates body from the entry environment until the head
// stabilizes (widening near the bound), then runs one final recorded
// iteration on the converged head. body returns the environment after
// one iteration (nil if the body never falls through) and the loop-exit
// environment contribution of this iteration.
func (ev *vrEval) loopFixpoint(entry *vrEnv, body func(*vrEnv) (after, exit *vrEnv)) *vrEnv {
	head := entry
	ev.mute++
	for i := 0; i < maxLoopIter; i++ {
		after, _ := body(head.clone())
		var next *vrEnv
		if i >= maxLoopIter-2 {
			next = widenEnv(head, after)
		} else {
			next = joinEnv(head.clone(), after)
		}
		if next == nil {
			next = head
		}
		if equalEnv(head, next) {
			break
		}
		head = next
	}
	ev.mute--
	_, exit := body(head.clone())
	return exit
}

// execSwitch runs a value switch with equality refinement per clause
// (skipped entirely when any clause falls through).
func (ev *vrEval) execSwitch(st *ast.SwitchStmt, env *vrEnv) flowOut {
	if st.Init != nil {
		r := ev.execStmt(st.Init, env)
		env = r.env
		if env == nil {
			return flowOut{}
		}
	}
	var tagPath string
	if st.Tag != nil {
		ev.eval(st.Tag, env)
		ev.callEffects(st.Tag, env)
		tagPath = canonPath(st.Tag)
	}
	hasFallthrough := false
	ast.Inspect(st.Body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.FALLTHROUGH {
			hasFallthrough = true
		}
		return true
	})
	var outs []*vrEnv
	var conts []*vrEnv
	hasDefault := false
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauseEnv := env.clone()
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			ev.eval(e, clauseEnv)
		}
		if !hasFallthrough && tagPath != "" && len(cc.List) == 1 {
			// switch x { case k: ... } refines x == k in the clause.
			if v := ev.eval(cc.List[0], clauseEnv); !v.Bot {
				if cur, ok := clauseEnv.vals[tagPath]; ok {
					clauseEnv.vals[tagPath] = cur.Meet(v)
				} else if it, okt := typeShape(ev.pkg().TypeOf(st.Tag)); okt {
					clauseEnv.vals[tagPath] = v.Meet(rangeOf(it))
				}
			}
		}
		out := ev.execClause(cc.Body, clauseEnv)
		outs = append(outs, out.env)
		for _, b := range out.brk {
			outs = append(outs, b)
		}
		conts = append(conts, out.cont...)
	}
	var merged *vrEnv
	for _, o := range outs {
		merged = joinEnv(merged, o)
	}
	if !hasDefault {
		merged = joinEnv(merged, env)
	}
	return flowOut{env: merged, cont: conts}
}

// execClause runs a case clause body (break applies to the switch).
func (ev *vrEval) execClause(stmts []ast.Stmt, env *vrEnv) flowOut {
	out := fall(env)
	for _, s := range stmts {
		if out.env == nil {
			break
		}
		if b, ok := s.(*ast.BranchStmt); ok && b.Tok == token.FALLTHROUGH {
			continue
		}
		r := ev.execStmt(s, out.env)
		out.env = r.env
		out.brk = append(out.brk, r.brk...)
		out.cont = append(out.cont, r.cont...)
	}
	return out
}

// execTypeSwitch runs each clause on a copy of the entry environment.
func (ev *vrEval) execTypeSwitch(st *ast.TypeSwitchStmt, env *vrEnv) flowOut {
	if st.Init != nil {
		r := ev.execStmt(st.Init, env)
		env = r.env
		if env == nil {
			return flowOut{}
		}
	}
	ev.execStmt(st.Assign, env.clone())
	var merged *vrEnv
	var conts []*vrEnv
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		out := ev.execClause(cc.Body, env.clone())
		merged = joinEnv(merged, out.env)
		for _, b := range out.brk {
			merged = joinEnv(merged, b)
		}
		conts = append(conts, out.cont...)
	}
	merged = joinEnv(merged, env)
	return flowOut{env: merged, cont: conts}
}

// execSelect runs each comm clause on a copy of the entry environment.
func (ev *vrEval) execSelect(st *ast.SelectStmt, env *vrEnv) flowOut {
	var merged *vrEnv
	var conts []*vrEnv
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		clauseEnv := env.clone()
		if cc.Comm != nil {
			r := ev.execStmt(cc.Comm, clauseEnv)
			clauseEnv = r.env
		}
		if clauseEnv == nil {
			continue
		}
		out := ev.execClause(cc.Body, clauseEnv)
		merged = joinEnv(merged, out.env)
		for _, b := range out.brk {
			merged = joinEnv(merged, b)
		}
		conts = append(conts, out.cont...)
	}
	return flowOut{env: merged, cont: conts}
}

// execReturn evaluates return values into the result summary.
func (ev *vrEval) execReturn(st *ast.ReturnStmt, env *vrEnv) {
	if len(st.Results) == 0 {
		// Bare return: named results carry their current values.
		for i, name := range ev.resultNames {
			if v, ok := env.vals[name]; ok {
				ev.joinResult(i, v)
			} else if it, okt := typeShapeByIndex(ev.node, i); okt {
				ev.joinResult(i, rangeOf(it))
			}
		}
		return
	}
	if len(st.Results) == 1 && ev.resultCount() > 1 {
		// return f() forwarding a tuple.
		ev.eval(st.Results[0], env)
		ev.callEffects(st.Results[0], env)
		if call, ok := ast.Unparen(st.Results[0]).(*ast.CallExpr); ok {
			if callee := ev.staticCallee(call); callee != nil {
				for i := 0; i < ev.resultCount(); i++ {
					if v, ok := ev.calleeResult(callee, i); ok {
						ev.joinResult(i, v)
						continue
					}
					if it, okt := typeShapeByIndex(ev.node, i); okt {
						ev.joinResult(i, rangeOf(it))
					}
				}
				return
			}
		}
		for i := 0; i < ev.resultCount(); i++ {
			if it, okt := typeShapeByIndex(ev.node, i); okt {
				ev.joinResult(i, rangeOf(it))
			}
		}
		return
	}
	for i, r := range st.Results {
		v := ev.eval(r, env)
		ev.callEffects(r, env)
		if it, ok := typeShapeByIndex(ev.node, i); ok {
			ev.joinResult(i, v.Meet(rangeOf(it)))
		}
	}
}

// resultCount returns the declared result arity.
func (ev *vrEval) resultCount() int {
	res := ev.node.Decl.Type.Results
	if res == nil {
		return 0
	}
	n := 0
	for _, f := range res.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// typeShapeByIndex resolves the shape of result i of a declaration.
func typeShapeByIndex(node *FuncNode, i int) (intType, bool) {
	res := node.Decl.Type.Results
	if res == nil {
		return intType{}, false
	}
	idx := 0
	for _, f := range res.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		if i < idx+n {
			return typeShape(node.Pkg.TypeOf(f.Type))
		}
		idx += n
	}
	return intType{}, false
}

// calleeResult reads result i of a callee's summary; Bot (never
// evaluated or never returns) reads as unknown.
func (ev *vrEval) calleeResult(callee *FuncNode, i int) (AbsVal, bool) {
	s := ev.summaries[callee]
	if s == nil || i >= len(s.results) || s.results[i].Bot {
		return AbsVal{}, false
	}
	return s.results[i], true
}

// staticCallee resolves a call to its in-program declaration when the
// call is a plain static (non-interface) dispatch.
func (ev *vrEval) staticCallee(call *ast.CallExpr) *FuncNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := ev.pkg().ObjectOf(fun).(*types.Func); ok {
			return ev.prog.nodeFor(fn)
		}
	case *ast.SelectorExpr:
		if recv := ev.pkg().TypeOf(fun.X); recv != nil && types.IsInterface(recv) {
			return nil
		}
		if fn, ok := ev.pkg().ObjectOf(fun.Sel).(*types.Func); ok {
			return ev.prog.nodeFor(fn)
		}
	}
	return nil
}
