package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MapRange returns the ordered-map-iteration analyzer. Go randomizes map
// iteration order on every run, so a `for … range m` over a map inside a
// package that mutates simulation state per cycle is a reproducibility
// hazard: any state mutation, trace emission, or tie-break performed in
// such a loop varies between runs with identical seeds. Loops must either
// iterate sorted keys (or an indexed slice) or carry a
// `//metrovet:ordered <reason>` annotation stating why order cannot
// matter.
func MapRange() *Analyzer {
	return &Analyzer{
		Name: "ordered-map-iteration",
		Doc:  "flag range-over-map in cycle-state packages (core, netsim, cascade, nic, fault, topo); iterate sorted keys or annotate //metrovet:ordered <reason>",
		Run:  runMapRange,
	}
}

func runMapRange(p *Package) []Finding {
	if !isCycleStatePackage(p.ImportPath) {
		return nil
	}
	var out []Finding
	for _, f := range p.AllFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !rangesOverMap(p, rs.X) {
				return true
			}
			pos := p.Fset.Position(rs.For)
			if p.suppressed("ordered-map-iteration", "ordered", pos) {
				return true
			}
			out = append(out, Finding{
				Pos:  pos,
				Rule: "ordered-map-iteration",
				Msg: fmt.Sprintf("iteration over map %s has nondeterministic order; iterate sorted keys or annotate //metrovet:ordered <reason>",
					exprString(rs.X)),
			})
			return true
		})
	}
	return out
}

// rangesOverMap reports whether expr has map type. Type information is
// authoritative; when it is missing (type-check hole) a small syntactic
// fallback catches direct map literals and make(map[...]) expressions.
func rangesOverMap(p *Package, expr ast.Expr) bool {
	if t := p.TypeOf(expr); t != nil && t != types.Typ[types.Invalid] {
		_, isMap := t.Underlying().(*types.Map)
		return isMap
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, ok := e.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}

// exprString renders a short display form of the ranged expression.
func exprString(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[…]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	case *ast.CompositeLit:
		return "(map literal)"
	default:
		return "(expression)"
	}
}
