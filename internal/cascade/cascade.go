// Package cascade implements METRO's router width cascading (paper,
// Section 5.1): building a logical router with a wide datapath from
// several narrow routing components operating in parallel.
//
// Two hooks make the members behave identically: *shared randomness* (all
// members draw their random input bits from the same off-chip stream, so
// identical connection requests produce identical stochastic allocations)
// and a *wired-AND IN-USE consistency check* (each backward port's in-use
// state is compared across members every cycle; any disagreement is
// necessarily an error — a corrupted header reached some member — and the
// connection is immediately shut down on all members, containing the
// fault). End-to-end checksums still back-stop the rare cases the wired
// AND cannot see.
//
// A logical word on a c-cascade of width-w routers is w*c bits: control
// words (ROUTE, TURN, DROP, DATA-IDLE) are replicated to every member so
// their connection state machines stay in lockstep, while DATA and
// CHECKSUM payloads are bit-sliced across the members.
package cascade

import (
	"fmt"

	"metro/internal/clock"
	"metro/internal/core"
	"metro/internal/prng"
	"metro/internal/word"
)

// Group is a width-cascaded logical router: c member routers evaluated in
// lockstep under one engine registration, with the consistency check run
// combinationally after each evaluation. Only the Group is added to the
// clock engine; members must not be registered individually.
type Group struct {
	name    string
	members []*core.Router
	kills   int
	victims []bool // per forward port; scratch reused by check each cycle
}

// NewGroup builds a cascade of c members with identical configuration,
// each drawing random bits from a fork of the same shared stream.
func NewGroup(name string, cfg core.Config, set core.Settings, c int, shared *prng.Shared) *Group {
	if c < 1 {
		panic("cascade: need at least one member")
	}
	g := &Group{name: name, victims: make([]bool, cfg.Inputs)}
	for k := 0; k < c; k++ {
		r := core.NewRouter(fmt.Sprintf("%s.m%d", name, k), cfg, set, shared.Fork())
		g.members = append(g.members, r)
	}
	return g
}

// AddTo registers the group with the engine under the given co-location
// affinity. This is the cascade's shard-affinity declaration for the
// parallel engine: the members draw from one shared LFSR stream and the
// wired-AND IN-USE check reads every member within a cycle, so the
// whole group must evaluate on a single shard. The Group being one
// clock.Component enforces that by construction — AddTo exists so
// assemblers state the affinity explicitly (and can co-locate the
// group's links on the same shard) instead of registering members ad
// hoc.
func (g *Group) AddTo(e *clock.Engine, aff clock.ShardAffinity) { e.AddSharded(aff, g) }

// Width returns the cascade width c.
func (g *Group) Width() int { return len(g.members) }

// Member returns the k-th member router.
//
//metrovet:bounds caller contract: k < Width(), the group's construction-time cascade factor
func (g *Group) Member(k int) *core.Router { return g.members[k] }

// Kills returns how many connections the consistency check has shut down.
func (g *Group) Kills() int { return g.kills }

// Eval evaluates every member and then applies the wired-AND IN-USE
// consistency check.
//
//metrovet:shared members are the group's own state: only the Group is engine-registered, and AddTo pins it to one shard
//metrovet:bounds NewGroup panics on c < 1, so members[0] always exists
func (g *Group) Eval(cycle uint64) {
	for _, r := range g.members {
		r.Eval(cycle)
	}
	g.check(cycle)
}

// Commit implements clock.Component.
func (g *Group) Commit(cycle uint64) {
	for _, r := range g.members {
		r.Commit(cycle)
	}
}

// check compares the members' backward-port allocation masks and kills any
// connection the members disagree about, on every member.
//
//metrovet:shared the wired-AND check reads all co-located members within the cycle; that is why a Group must never be split across shards
//metrovet:bounds NewGroup panics on c < 1 and sizes victims to cfg.Inputs, the kill loop's bound
func (g *Group) check(cycle uint64) {
	base := g.members[0].BackwardInUse()
	agree := true
	for _, r := range g.members[1:] {
		if r.BackwardInUse() != base {
			agree = false
			break
		}
	}
	if agree {
		return
	}
	// Disagreement: find the offending forward ports (owners of any port
	// whose state differs across members) and shut them down everywhere.
	// The per-port victim flags live on the Group so the per-cycle check
	// stays allocation-free.
	outputs := g.members[0].Config().Outputs
	for fp := range g.victims {
		g.victims[fp] = false
	}
	for bp := 0; bp < outputs; bp++ {
		firstOwner := -1
		anyOwned, anyFree, mixed := false, false, false
		for _, r := range g.members {
			fp := r.OwnerOf(bp)
			if fp < 0 {
				anyFree = true
				continue
			}
			if anyOwned && fp != firstOwner {
				mixed = true
			}
			anyOwned = true
			firstOwner = fp
		}
		if (anyOwned && anyFree) || mixed {
			for _, r := range g.members {
				if fp := r.OwnerOf(bp); fp >= 0 && fp < len(g.victims) {
					g.victims[fp] = true
				}
			}
		}
	}
	// Kill in ascending forward-port order: KillConnection emits tracer
	// events, and the hardware's wired-AND check resolves all ports in one
	// combinational pass, so the model must not leak iteration order into
	// the trace stream.
	for fp := 0; fp < g.members[0].Config().Inputs; fp++ {
		if !g.victims[fp] {
			continue
		}
		for _, r := range g.members {
			r.KillConnection(cycle, fp)
		}
		g.kills++
	}
}

// MemberWord computes member k of a logical word bit-sliced across lanes
// of width w: the allocation-free form of SplitWord for per-cycle paths.
// Control words are replicated; data-bearing payloads are bit-sliced with
// member 0 carrying the least significant w bits.
//
//metrovet:width k < the cascade factor and w is the member width, so k*w < c*w <= 32, the logical channel bound
//metrovet:truncate k and w are nonnegative (lane index and member width)
func MemberWord(logical word.Word, k, w int) word.Word {
	switch logical.Kind {
	case word.Data, word.ChecksumWord:
		return word.Word{
			Kind:    logical.Kind,
			Payload: (logical.Payload >> uint(k*w)) & word.Mask(w),
		}
	case word.Empty, word.Route, word.HeaderPad, word.DataIdle, word.Turn,
		word.Status, word.Drop:
		// Control words are replicated so member state machines stay in
		// lockstep.
		return logical
	default:
		panic("cascade: MemberWord: out-of-band word kind")
	}
}

// SplitWord slices a logical word of width w*c into the c member words.
func SplitWord(logical word.Word, c, w int) []word.Word {
	out := make([]word.Word, c)
	for k := range out {
		out[k] = MemberWord(logical, k, w)
	}
	return out
}

// MergeWords reassembles a logical word from the member words. The kinds
// must agree (members in lockstep); on disagreement the Empty word is
// returned, which upper layers treat as a protocol error.
//
//metrovet:width k < the cascade factor and w is the member width, so k*w < c*w <= 32, the logical channel bound
//metrovet:truncate k and w are nonnegative (lane index and member width)
func MergeWords(members []word.Word, w int) word.Word {
	if len(members) == 0 {
		return word.Word{}
	}
	kind := members[0].Kind
	for _, m := range members[1:] {
		if m.Kind != kind {
			return word.Word{}
		}
	}
	switch kind {
	case word.Data, word.ChecksumWord:
		out := word.Word{Kind: kind}
		for k, m := range members {
			out.Payload |= (m.Payload & word.Mask(w)) << uint(k*w)
		}
		return out
	case word.Empty, word.Route, word.HeaderPad, word.DataIdle, word.Turn,
		word.Status, word.Drop:
		// Replicated control word: all members carry the same value.
		return members[0]
	default:
		panic("cascade: MergeWords: out-of-band word kind")
	}
}
