package main_test

import (
	"testing"

	"metro/internal/clitest"
)

// TestGoldenTables pins the three paper-reproduction tables: any drift
// in the analytic latency model or the table formatting shows up as a
// golden diff against the published numbers.
func TestGoldenTables(t *testing.T) {
	for _, table := range []string{"3", "4", "5"} {
		t.Run("table"+table, func(t *testing.T) {
			clitest.Golden(t, "table"+table, "metrolat", "-table", table)
		})
	}
}
