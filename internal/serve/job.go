package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"metro/internal/metrofuzz"
	"metro/internal/telemetry"
)

// Job/result status values. A job is content-addressed: its ID is the
// cache key of its (spec, options) pair, so identical submissions
// coalesce onto one record and one execution.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusPassed   = "passed"   // all oracles passed
	StatusFailed   = "failed"   // an oracle fired — a real divergence report
	StatusDeadline = "deadline" // canceled by the per-job deadline or drain
)

// Result is the stored outcome of one executed job — the JSON body
// served for it forever after. Marshaling is deterministic (fixed field
// order, no maps), so the cached bytes of a repeat submission are
// byte-identical to the first run's response.
type Result struct {
	ID          string   `json:"id"`
	Spec        string   `json:"spec"` // canonical encoding
	Engine      Engine   `json:"engine"`
	Status      string   `json:"status"`
	Cycles      uint64   `json:"cycles"`
	Offered     int      `json:"offered"`
	Delivered   int      `json:"delivered"`
	Duplicates  int      `json:"duplicates"`
	FaultsFired int      `json:"faultsFired"`
	Oracles     []string `json:"oracles"`
	Failures    []string `json:"failures,omitempty"`
	// Summary is byte-identical to `metrofuzz -replay -shrink=false`
	// output for this spec; the e2e harness diffs the two.
	Summary string `json:"summary"`
	// Trace carries the serial reference leg's mtr1 telemetry stream
	// when the job was submitted with trace=1.
	Trace string `json:"trace,omitempty"`
}

// job is one in-flight or retained execution record.
type job struct {
	id     string
	spec   string // canonical encoding
	scn    metrofuzz.Scenario
	engine Engine
	trace  bool

	hub  *hub
	done chan struct{}

	// enqueuedAt is the wallclock instant the job entered the admission
	// queue; workers subtract it to observe queue wait. Observability
	// only — it never influences the simulation.
	enqueuedAt time.Time

	mu        sync.Mutex
	state     string // StatusQueued or StatusRunning until completion
	result    *Result
	body      []byte // canonical marshaled result, the served bytes
	coalesced int    // submissions beyond the first that attached here
}

func newJob(id, spec string, scn metrofuzz.Scenario, engine Engine, trace bool, obs jobObs) *job {
	return &job{
		id:     id,
		spec:   spec,
		scn:    scn,
		engine: engine,
		trace:  trace,
		state:  StatusQueued,
		hub:    newHub(id, obs),
		done:   make(chan struct{}),
	}
}

// status returns the job's current externally visible status.
func (j *job) status() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result != nil {
		return j.result.Status
	}
	return j.state
}

// snapshot returns the completed result and its canonical bytes, or
// ok=false while the job is still pending.
func (j *job) snapshot() (*Result, []byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		return nil, nil, false
	}
	return j.result, j.body, true
}

// complete stores the result, closes done, and emits the terminal SSE
// event.
func (j *job) complete(res *Result, body []byte) {
	j.mu.Lock()
	j.result = res
	j.body = body
	j.mu.Unlock()
	close(j.done)
	// SSE data must be newline-free; the canonical body carries one
	// trailing newline.
	j.hub.publish(streamEvent{name: "done", data: body[:len(body)-1]}, true)
	j.hub.close()
}

// buildResult converts a finished oracle report into the stored Result.
func buildResult(j *job, rep *metrofuzz.Report, rec *telemetry.Recorder) *Result {
	res := &Result{
		ID:          j.id,
		Spec:        j.spec,
		Engine:      j.engine,
		Status:      StatusPassed,
		Cycles:      rep.Cycles,
		Offered:     rep.Offered,
		Delivered:   rep.Delivered,
		Duplicates:  rep.Duplicates,
		FaultsFired: rep.FaultsFired,
		Oracles:     oraclesChecked(j),
		Summary:     rep.Summary(),
	}
	switch {
	case rep.Canceled:
		res.Status = StatusDeadline
	case rep.Failed():
		res.Status = StatusFailed
	}
	for _, f := range rep.Failures {
		res.Failures = append(res.Failures, f.String())
	}
	if j.trace && rec != nil && !rep.Canceled {
		var b strings.Builder
		if err := telemetry.Encode(&b, rec.Snapshot()); err == nil {
			res.Trace = b.String()
		}
	}
	return res
}

// oraclesChecked lists the oracle battery this job's options armed, in
// the canonical metrofuzz order.
func oraclesChecked(j *job) []string {
	var out []string
	for _, o := range metrofuzz.OracleNames {
		if o == "differential" && j.scn.Workers == 0 {
			continue
		}
		if o == "kernel" && j.engine != EngineKernel {
			continue
		}
		out = append(out, o)
	}
	return out
}

// marshalResult renders the canonical response bytes: compact JSON plus
// a trailing newline.
func marshalResult(res *Result) []byte {
	body, err := json.Marshal(res)
	if err != nil {
		// Result contains only marshalable fields; reaching this is a
		// programming error, not an input error.
		panic(fmt.Sprintf("serve: marshal result: %v", err))
	}
	return append(body, '\n')
}
