// Package prng provides the pseudo-random bit sources used by METRO routers
// for stochastic output-port selection.
//
// The METRO architecture requires each routing component to generate one
// random output bit stream and to accept one or more random input bits
// (architecture parameter ri). Width cascading depends on *shared
// randomness*: every member of a cascade group must see the identical random
// bit stream so that, given identical connection requests, all members make
// identical allocation decisions (paper, Section 5.1). The Shared type
// models the off-chip fan-out of one bit stream to several consumers.
//
// All sources are deterministic functions of their seed, making every
// simulation in this repository reproducible bit for bit.
package prng

// Source supplies random bits to a router's allocation logic.
type Source interface {
	// NextBits returns the next n bits of the stream (0 <= n <= 32),
	// with the first-generated bit in the least-significant position.
	NextBits(n int) uint32
}

// LFSR is a 32-bit maximal-length Galois linear feedback shift register,
// the kind of generator the METRO silicon would implement in a handful of
// gates. The zero value is not valid; use NewLFSR.
type LFSR struct {
	state uint32
}

// lfsrTaps is a feedback polynomial giving a maximal-length (2^32-1)
// sequence: x^32 + x^22 + x^2 + x^1 + 1.
const lfsrTaps uint32 = 0x80200003

// NewLFSR returns an LFSR seeded from seed. A zero seed (the LFSR's one
// forbidden state) is remapped to a fixed nonzero constant.
func NewLFSR(seed uint32) *LFSR {
	if seed == 0 {
		seed = 0x1d872b41
	}
	return &LFSR{state: seed}
}

// NextBit advances the register and returns the output bit.
func (l *LFSR) NextBit() uint32 {
	out := l.state & 1
	l.state >>= 1
	if out != 0 {
		l.state ^= lfsrTaps
	}
	return out
}

// NextBits returns the next n bits, first bit in the least-significant
// position. n is clamped to [0, 32].
func (l *LFSR) NextBits(n int) uint32 {
	if n < 0 {
		n = 0
	}
	if n > 32 {
		n = 32
	}
	var v uint32
	for i := 0; i < n; i++ {
		v |= l.NextBit() << uint(i)
	}
	return v
}

var _ Source = (*LFSR)(nil)

// Shared fans one underlying bit stream out to multiple consumers, modeling
// the shared random inputs wired to every member of a width-cascaded router
// group. Each Fork returns a Source with an independent cursor into the
// common stream: consumers that draw bits in the same pattern observe the
// same bits, which is exactly the property cascading relies on.
//
// Shared is not safe for concurrent use: every consumer of one Shared
// stream must evaluate on the same goroutine. Under the parallel clock
// engine this is a co-location requirement — all components drawing
// from one Shared stream must be registered under a single
// clock.ShardAffinity. cascade.Group satisfies it by construction (the
// group is one component, so its members and their forks always
// evaluate together); any other fan-out must declare co-location the
// same way.
type Shared struct {
	gen     *LFSR
	buf     []uint8 // one bit per element
	base    uint64  // stream index of buf[0]
	cursors []*forkCursor
}

type forkCursor struct {
	s   *Shared
	pos uint64
}

// NewShared returns a Shared stream driven by an LFSR with the given seed.
func NewShared(seed uint32) *Shared {
	return &Shared{gen: NewLFSR(seed)}
}

// Fork returns a new consumer of the shared stream, positioned at the
// current head of the stream.
func (s *Shared) Fork() Source {
	c := &forkCursor{s: s, pos: s.base + uint64(len(s.buf))}
	s.cursors = append(s.cursors, c)
	return c
}

// bitAt returns stream bit idx, generating and buffering as needed.
//
//metrovet:bounds the fill loop exits only once base+len(buf) > idx, and cursors never rewind below base, so idx-base indexes inside buf
func (s *Shared) bitAt(idx uint64) uint32 {
	for s.base+uint64(len(s.buf)) <= idx {
		//metrovet:alloc amortized growth of the shared bit buffer; trim recycles the backing array
		s.buf = append(s.buf, uint8(s.gen.NextBit()))
	}
	return uint32(s.buf[idx-s.base])
}

// trim discards buffered bits already consumed by every cursor.
func (s *Shared) trim() {
	if len(s.cursors) == 0 {
		return
	}
	low := s.cursors[0].pos
	for _, c := range s.cursors[1:] {
		if c.pos < low {
			low = c.pos
		}
	}
	if low > s.base {
		drop := low - s.base
		//metrovet:alloc shifts within the existing backing array (append onto s.buf[:0]); never grows
		s.buf = append(s.buf[:0], s.buf[drop:]...)
		s.base = low
	}
}

// NextBits implements Source for a fork of the shared stream.
func (c *forkCursor) NextBits(n int) uint32 {
	if n < 0 {
		n = 0
	}
	if n > 32 {
		n = 32
	}
	var v uint32
	for i := 0; i < n; i++ {
		v |= c.s.bitAt(c.pos) << uint(i)
		c.pos++
	}
	c.s.trim()
	return v
}
