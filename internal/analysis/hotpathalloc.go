package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc returns the hot-path-alloc analyzer. The per-cycle
// Eval/Commit path is the simulator's inner loop: every component runs it
// once per simulated clock cycle, millions of times per experiment, and
// the ROADMAP's "as fast as the hardware allows" goal dies by a thousand
// hidden heap allocations there. Hardware has no allocator; the model's
// cycle path shouldn't either.
//
// The rule: in the bodies of Eval/Commit methods of clock.Component
// implementers — any type declaring both — and every function reachable
// from them over the whole-program call graph (static calls, method
// values, CHA-resolved interface dispatch; see callgraph.go), the
// analyzer flags the allocation idioms Go hides in plain sight:
// make/new, growing append, slice and map composite literals, &composite
// literals, fmt calls, string concatenation, and interface boxing of
// non-pointer values. Justified sites (per-message work that is not
// per-cycle, appends into buffers whose capacity is preallocated) carry
// `//metrovet:alloc <reason>` on the line or, for whole per-message
// helpers, on the function's doc comment. The static rule is paired with
// AllocsPerRun-gated benchmarks (internal/core, internal/link,
// internal/nic) proving zero allocations per steady-state cycle at
// runtime.
func HotPathAlloc() *Analyzer {
	return &Analyzer{
		Name: "hot-path-alloc",
		Doc:  "flag heap-allocation idioms reachable from clock.Component Eval/Commit; annotate //metrovet:alloc <reason> for justified per-message work",
		Run: func(p *Package) []Finding {
			return runHotPathAlloc(NewProgram([]*Package{p}))
		},
		RunProgram: runHotPathAlloc,
	}
}

func runHotPathAlloc(prog *Program) []Finding {
	roots := componentRoots(prog, nil, "Eval", "Commit")
	if len(roots) == 0 {
		return nil
	}
	reached := prog.CallGraph().Reachable(roots, nil)
	var out []Finding
	for _, node := range reachedNodes(reached) {
		p, fd := node.Pkg, node.Decl
		if p.Types == nil || p.Info == nil {
			continue
		}
		if docDirective(fd.Doc, "alloc") {
			continue // whole function justified (per-message helper)
		}
		root := reached[node].Root
		report := func(pos token.Position, root, what string) {
			if p.suppressed("hot-path-alloc", "alloc", pos) {
				return
			}
			out = append(out, Finding{
				Pos:  pos,
				Rule: "hot-path-alloc",
				Msg: fmt.Sprintf("%s in per-cycle path (reachable from %s); preallocate scratch on the component or annotate //metrovet:alloc <reason>",
					what, root),
			})
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkCallAlloc(p, e, root, report)
			case *ast.UnaryExpr:
				if e.Op == token.AND {
					if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
						report(p.Fset.Position(e.Pos()), root, "&composite literal escapes to the heap")
					}
				}
			case *ast.CompositeLit:
				switch p.typeUnderlying(e) {
				case "slice":
					report(p.Fset.Position(e.Pos()), root, "slice literal allocates its backing array")
				case "map":
					report(p.Fset.Position(e.Pos()), root, "map literal allocates")
				}
			case *ast.BinaryExpr:
				if e.Op == token.ADD && isStringType(p.TypeOf(e.X)) {
					report(p.Fset.Position(e.Pos()), root, "string concatenation allocates")
				}
			case *ast.AssignStmt:
				if len(e.Lhs) == len(e.Rhs) {
					for i := range e.Lhs {
						if isInterfaceType(p.TypeOf(e.Lhs[i])) && isBoxable(p.TypeOf(e.Rhs[i])) {
							report(p.Fset.Position(e.Rhs[i].Pos()), root, "interface boxing of a non-pointer value allocates")
						}
					}
				}
			}
			return true
		})
	}
	SortFindings(out)
	return out
}

// checkCallAlloc flags allocating calls: the make/new/append builtins, fmt
// formatting, conversions to interface types, and interface boxing of
// non-pointer arguments at interface-typed parameters.
func checkCallAlloc(p *Package, call *ast.CallExpr, root string, report func(token.Position, string, string)) {
	pos := p.Fset.Position(call.Pos())
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if isBuiltin(p, fun) {
			switch fun.Name {
			case "make":
				report(pos, root, "make allocates")
			case "new":
				report(pos, root, "new allocates")
			case "append":
				report(pos, root, "append may grow its backing array")
			}
			return
		}
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if path, ok := p.PkgNameOf(x); ok && path == "fmt" {
				report(pos, root, "fmt call allocates")
				return
			}
		}
	}
	switch ft := p.TypeOf(call.Fun).(type) {
	case *types.Signature:
		params := ft.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case ft.Variadic() && i >= params.Len()-1:
				if call.Ellipsis.IsValid() {
					continue // s... passes the slice through, no per-element boxing
				}
				if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
					pt = sl.Elem()
				}
			case i < params.Len():
				pt = params.At(i).Type()
			}
			if pt != nil && isInterfaceType(pt) && isBoxable(p.TypeOf(arg)) {
				report(p.Fset.Position(arg.Pos()), root, "interface boxing of a non-pointer value allocates")
			}
		}
	default:
		// A call whose Fun is a type is a conversion; converting a
		// non-pointer value to an interface boxes it.
		if ft != nil && isInterfaceType(ft) && len(call.Args) == 1 && isBoxable(p.TypeOf(call.Args[0])) {
			report(pos, root, "interface boxing of a non-pointer value allocates")
		}
	}
}

// typeUnderlying classifies a composite literal's underlying type.
func (p *Package) typeUnderlying(e ast.Expr) string {
	t := p.TypeOf(e)
	if t == nil {
		return ""
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return ""
}

func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isBoxable reports whether storing a value of type t in an interface
// heap-allocates: true for value shapes (basics, structs, arrays, slices),
// false for pointer-shaped types (pointers, maps, chans, funcs), untyped
// nil, and interfaces themselves.
func isBoxable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UntypedNil && u.Kind() != types.Invalid && u.Kind() != types.UnsafePointer
	case *types.Struct, *types.Array, *types.Slice:
		return true
	}
	return false
}
