package scan

import "testing"

// TestStateString pins the IEEE 1149.1 standard name of every TAP state.
func TestStateString(t *testing.T) {
	want := []struct {
		s    State
		name string
	}{
		{TestLogicReset, "Test-Logic-Reset"},
		{RunTestIdle, "Run-Test/Idle"},
		{SelectDRScan, "Select-DR-Scan"},
		{CaptureDR, "Capture-DR"},
		{ShiftDR, "Shift-DR"},
		{Exit1DR, "Exit1-DR"},
		{PauseDR, "Pause-DR"},
		{Exit2DR, "Exit2-DR"},
		{UpdateDR, "Update-DR"},
		{SelectIRScan, "Select-IR-Scan"},
		{CaptureIR, "Capture-IR"},
		{ShiftIR, "Shift-IR"},
		{Exit1IR, "Exit1-IR"},
		{PauseIR, "Pause-IR"},
		{Exit2IR, "Exit2-IR"},
		{UpdateIR, "Update-IR"},
	}
	if len(want) != len(stateNames) {
		t.Fatalf("test covers %d states, stateNames has %d", len(want), len(stateNames))
	}
	for _, tc := range want {
		if got := tc.s.String(); got != tc.name {
			t.Errorf("State(%d).String() = %q, want %q", uint8(tc.s), got, tc.name)
		}
	}
	if got := State(200).String(); got != "State(200)" {
		t.Errorf("out-of-range String() = %q, want %q", got, "State(200)")
	}
}
