package topo

import "fmt"

// Scale returns a Figure 3-family network scaled to the given endpoint
// count: log_radix(endpoints) stages, all but the last built from
// 2r-input radix-r dilation-2 routers and the final stage from r-input
// radix-r dilation-1 routers, with two network connections per endpoint.
// Scale(64, 4) reproduces Figure3's structure exactly; larger powers of
// the radix extend the same construction (Scale(65536, 4) is the eight-
// stage, 64Ki-endpoint instance the kernel scaling curve measures).
//
// endpoints must be a positive power of radix and radix a power of two
// >= 2, mirroring Validate's per-stage constraints.
func Scale(endpoints, radix int) (Spec, error) {
	if radix < 2 || !isPow2(radix) {
		return Spec{}, fmt.Errorf("topo: scale radix must be a power of two >= 2, got %d", radix)
	}
	stages := 0
	for span := 1; span < endpoints; span *= radix {
		stages++
	}
	prod := 1
	for s := 0; s < stages; s++ {
		prod *= radix
	}
	if stages == 0 || prod != endpoints {
		return Spec{}, fmt.Errorf("topo: %d endpoints is not a positive power of radix %d", endpoints, radix)
	}
	spec := Spec{
		Endpoints:     endpoints,
		EndpointLinks: 2,
		Wiring:        WiringInterleave,
		Stages:        make([]StageSpec, stages),
	}
	for s := 0; s < stages-1; s++ {
		spec.Stages[s] = StageSpec{Inputs: 2 * radix, Radix: radix, Dilation: 2}
	}
	spec.Stages[stages-1] = StageSpec{Inputs: radix, Radix: radix, Dilation: 1}
	return spec, nil
}

// Figure1 returns the 16x16 multipath network of the paper's Figure 1:
// two stages of 4x2 (inputs x radix) dilation-2 routers followed by a
// stage of 4x4 dilation-1 routers, with two network connections per
// endpoint. Losing any single final-stage router isolates no endpoint.
func Figure1() Spec {
	return Spec{
		Endpoints:     16,
		EndpointLinks: 2,
		Stages: []StageSpec{
			{Inputs: 4, Radix: 2, Dilation: 2},
			{Inputs: 4, Radix: 2, Dilation: 2},
			{Inputs: 4, Radix: 4, Dilation: 1},
		},
		Wiring: WiringInterleave,
	}
}

// Figure3 returns the 3-stage, radix-4 network simulated in the paper's
// Figure 3: the first two stages are 8x8 routers configured in dilation-2
// (radix-4) mode, the final stage runs dilation-1 radix-4; 64 endpoints
// with two network connections each.
func Figure3() Spec {
	return Spec{
		Endpoints:     64,
		EndpointLinks: 2,
		Stages: []StageSpec{
			{Inputs: 8, Radix: 4, Dilation: 2},
			{Inputs: 8, Radix: 4, Dilation: 2},
			{Inputs: 4, Radix: 4, Dilation: 1},
		},
		Wiring: WiringInterleave,
	}
}

// Table3Network32 returns the 32-node multibutterfly used for the t20,32
// application-latency estimates of Table 3 when built from METROJR-class
// 4x4 routers: three dilation-2 radix-2 stages and a final dilation-1
// radix-4 stage (4 routing stages total, as the Table 3 rows assume).
func Table3Network32() Spec {
	return Spec{
		Endpoints:     32,
		EndpointLinks: 2,
		Stages: []StageSpec{
			{Inputs: 4, Radix: 2, Dilation: 2},
			{Inputs: 4, Radix: 2, Dilation: 2},
			{Inputs: 4, Radix: 2, Dilation: 2},
			{Inputs: 4, Radix: 4, Dilation: 1},
		},
		Wiring: WiringInterleave,
	}
}

// Table3Network32Radix8 returns the 2-stage 32-node network assumed for
// the Table 3 rows built from 8x8 METRO routers: a dilation-2 radix-4
// stage followed by a dilation-1 radix-8 stage.
func Table3Network32Radix8() Spec {
	return Spec{
		Endpoints:     32,
		EndpointLinks: 2,
		Stages: []StageSpec{
			{Inputs: 8, Radix: 4, Dilation: 2},
			{Inputs: 8, Radix: 8, Dilation: 1},
		},
		Wiring: WiringInterleave,
	}
}
